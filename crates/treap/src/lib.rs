//! A persistent (immutable, structurally shared) treap keyed by `u64`.
//!
//! The bounded-space variant of the Naderibeni–Ruppert queue (§6 and
//! Appendix B of the PODC 2023 paper) replaces each tree node's infinite
//! `blocks` array with a *persistent* balanced search tree of blocks, so
//! that an updated tree version can be published with a single CAS on the
//! root pointer while readers keep traversing their own immutable version
//! (the Driscoll et al. node-copying technique; the paper uses a red–black
//! tree). This crate provides that substrate as a persistent **treap**:
//!
//! * structural sharing via [`Arc`]: updates copy only the search path;
//! * deterministic priorities (SplitMix64 of the key) so runs reproduce;
//! * the exact operation set the queue needs: [`PTreap::insert`],
//!   [`PTreap::split_ge`] (discard every key below a threshold — the
//!   paper's `Split`), [`PTreap::get`], O(1) [`PTreap::min`]/[`PTreap::max`]
//!   (the paper's `MinBlock`/`MaxBlock`), and monotone-predicate searches
//!   [`PTreap::first_where`]/[`PTreap::last_where`] (the paper's "min block
//!   with `enddir ≥ b`" and binary searches on `sumenq`).
//!
//! Every node visit during a search is recorded as a shared-memory step via
//! [`wfqueue_metrics`], matching the paper's cost model.
//!
//! # Examples
//!
//! ```
//! use wfqueue_treap::PTreap;
//!
//! let t = PTreap::new().insert(1, "a").insert(2, "b").insert(3, "c");
//! let newer = t.split_ge(3); // discard keys < 3
//! assert_eq!(newer.get(3), Some(&"c"));
//! assert!(newer.get(2).is_none());
//! assert_eq!(t.len(), 3); // the old version is untouched
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::sync::Arc;

use wfqueue_metrics as metrics;

/// Deterministic priority for a key (SplitMix64 finaliser). Using a fixed
/// hash keeps every run of the queue reproducible while giving the treap its
/// expected O(log n) depth.
#[inline]
#[must_use]
pub fn priority_of(key: u64) -> u64 {
    let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

type Link<V> = Option<Arc<Node<V>>>;

#[derive(Debug)]
struct Node<V> {
    key: u64,
    prio: u64,
    value: V,
    left: Link<V>,
    right: Link<V>,
}

/// A persistent treap from `u64` keys to values.
///
/// All operations take `&self` and return new versions; existing versions
/// are never mutated, so a version can be published to other threads with a
/// single atomic pointer swap. Values must be [`Clone`] because path copying
/// duplicates the nodes on the search path (the queue stores
/// `Arc<Block>` values, making clones O(1)).
///
/// The minimum and maximum entries are cached in the handle so that the
/// paper's `MinBlock`/`MaxBlock` queries are O(1) reads, as §B requires.
#[derive(Clone)]
pub struct PTreap<V> {
    root: Link<V>,
    len: usize,
    min: Option<(u64, V)>,
    max: Option<(u64, V)>,
}

impl<V: Clone> PTreap<V> {
    /// Creates an empty treap.
    ///
    /// # Examples
    ///
    /// ```
    /// let t: wfqueue_treap::PTreap<u8> = wfqueue_treap::PTreap::new();
    /// assert!(t.is_empty());
    /// ```
    #[must_use]
    pub fn new() -> Self {
        PTreap {
            root: None,
            len: 0,
            min: None,
            max: None,
        }
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the treap is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The entry with the smallest key, in O(1) (paper's `MinBlock`).
    #[must_use]
    pub fn min(&self) -> Option<(u64, &V)> {
        self.min.as_ref().map(|(k, v)| (*k, v))
    }

    /// The entry with the largest key, in O(1) (paper's `MaxBlock`).
    #[must_use]
    pub fn max(&self) -> Option<(u64, &V)> {
        self.max.as_ref().map(|(k, v)| (*k, v))
    }

    /// Looks up `key`, counting one step per node visited.
    #[must_use]
    pub fn get(&self, key: u64) -> Option<&V> {
        let mut cur = &self.root;
        while let Some(node) = cur {
            metrics::record_tree_node_visit();
            if key == node.key {
                return Some(&node.value);
            }
            cur = if key < node.key {
                &node.left
            } else {
                &node.right
            };
        }
        None
    }

    /// Returns a new version with `key → value` inserted. If `key` is
    /// already present its value is replaced.
    ///
    /// The queue only ever inserts `max_key + 1` (Lemma 24 of the paper),
    /// but the implementation is general and property-tested as such.
    #[must_use]
    pub fn insert(&self, key: u64, value: V) -> Self {
        let (below, at_or_above) = split(&self.root, key);
        // Drop an existing binding for `key`, if any.
        let (_, above) = split(&at_or_above, key + 1);
        let had_key = self.get(key).is_some();
        let single = Some(Arc::new(Node {
            key,
            prio: priority_of(key),
            value: value.clone(),
            left: None,
            right: None,
        }));
        let root = merge(merge(below, single), above);
        let len = if had_key { self.len } else { self.len + 1 };
        let min = match &self.min {
            Some((mk, _)) if *mk < key => self.min.clone(),
            _ => Some((key, value.clone())),
        };
        let max = match &self.max {
            Some((mk, _)) if *mk > key => self.max.clone(),
            _ => Some((key, value)),
        };
        PTreap {
            root,
            len,
            min,
            max,
        }
    }

    /// Returns a new version containing only the entries with key ≥
    /// `threshold` (the paper's `Split(T, s)`, which discards all blocks
    /// with index < `s`).
    #[must_use]
    pub fn split_ge(&self, threshold: u64) -> Self {
        let (below, kept) = split(&self.root, threshold);
        let removed = count(&below);
        drop(below);
        let len = self.len - removed;
        let min = min_entry(&kept).map(|(k, v)| (k, v.clone()));
        let max = if len == 0 { None } else { self.max.clone() };
        PTreap {
            root: kept,
            len,
            min,
            max,
        }
    }

    /// Finds the entry with the **smallest key** satisfying `pred`.
    ///
    /// `pred` must be *monotone in key order*: once true it stays true for
    /// all larger keys (e.g. "`block.endleft ≥ b`" or "`block.sumenq ≥ e`",
    /// which are non-decreasing in the block index by Lemma 4 / Invariant 7
    /// of the paper). Each node visit counts as one step, so the search is
    /// O(depth).
    #[must_use]
    pub fn first_where(&self, mut pred: impl FnMut(&V) -> bool) -> Option<(u64, &V)> {
        let mut cur = &self.root;
        let mut candidate = None;
        while let Some(node) = cur {
            metrics::record_tree_node_visit();
            if pred(&node.value) {
                candidate = Some((node.key, &node.value));
                cur = &node.left;
            } else {
                cur = &node.right;
            }
        }
        candidate
    }

    /// Finds the entry with the **largest key** satisfying `pred`.
    ///
    /// `pred` must be monotone the other way: once false it stays false for
    /// all larger keys (a true-prefix predicate such as "`endleft < b`").
    #[must_use]
    pub fn last_where(&self, mut pred: impl FnMut(&V) -> bool) -> Option<(u64, &V)> {
        let mut cur = &self.root;
        let mut candidate = None;
        while let Some(node) = cur {
            metrics::record_tree_node_visit();
            if pred(&node.value) {
                candidate = Some((node.key, &node.value));
                cur = &node.right;
            } else {
                cur = &node.left;
            }
        }
        candidate
    }

    /// In-order iterator over `(key, &value)` pairs (tests/introspection).
    pub fn iter(&self) -> Iter<'_, V> {
        let mut stack = Vec::new();
        push_left_spine(&self.root, &mut stack);
        Iter { stack }
    }

    /// Largest tree depth (introspection; expected O(log n)).
    #[must_use]
    pub fn depth(&self) -> usize {
        fn go<V>(link: &Link<V>) -> usize {
            match link {
                None => 0,
                Some(n) => 1 + go(&n.left).max(go(&n.right)),
            }
        }
        go(&self.root)
    }
}

impl<V: Clone> Default for PTreap<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Clone + fmt::Debug> fmt::Debug for PTreap<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<V: Clone> FromIterator<(u64, V)> for PTreap<V> {
    fn from_iter<I: IntoIterator<Item = (u64, V)>>(iter: I) -> Self {
        iter.into_iter()
            .fold(PTreap::new(), |t, (k, v)| t.insert(k, v))
    }
}

/// In-order iterator over a [`PTreap`]. Created by [`PTreap::iter`].
pub struct Iter<'a, V> {
    stack: Vec<&'a Node<V>>,
}

impl<'a, V> Iterator for Iter<'a, V> {
    type Item = (u64, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        let node = self.stack.pop()?;
        push_left_spine(&node.right, &mut self.stack);
        Some((node.key, &node.value))
    }
}

fn push_left_spine<'a, V>(mut link: &'a Link<V>, stack: &mut Vec<&'a Node<V>>) {
    while let Some(node) = link {
        stack.push(node);
        link = &node.left;
    }
}

/// Splits `link` into `(keys < key, keys >= key)`, copying only the search
/// path (O(depth) new nodes).
fn split<V: Clone>(link: &Link<V>, key: u64) -> (Link<V>, Link<V>) {
    match link {
        None => (None, None),
        Some(node) => {
            if node.key < key {
                let (lo, hi) = split(&node.right, key);
                let new = Arc::new(Node {
                    key: node.key,
                    prio: node.prio,
                    value: node.value.clone(),
                    left: node.left.clone(),
                    right: lo,
                });
                (Some(new), hi)
            } else {
                let (lo, hi) = split(&node.left, key);
                let new = Arc::new(Node {
                    key: node.key,
                    prio: node.prio,
                    value: node.value.clone(),
                    left: hi,
                    right: node.right.clone(),
                });
                (lo, Some(new))
            }
        }
    }
}

/// Merges two treaps where every key in `left` is smaller than every key in
/// `right`.
fn merge<V: Clone>(left: Link<V>, right: Link<V>) -> Link<V> {
    match (left, right) {
        (None, r) => r,
        (l, None) => l,
        (Some(l), Some(r)) => {
            if l.prio >= r.prio {
                let merged = merge(l.right.clone(), Some(r));
                Some(Arc::new(Node {
                    key: l.key,
                    prio: l.prio,
                    value: l.value.clone(),
                    left: l.left.clone(),
                    right: merged,
                }))
            } else {
                let merged = merge(Some(l), r.left.clone());
                Some(Arc::new(Node {
                    key: r.key,
                    prio: r.prio,
                    value: r.value.clone(),
                    left: merged,
                    right: r.right.clone(),
                }))
            }
        }
    }
}

fn count<V>(link: &Link<V>) -> usize {
    match link {
        None => 0,
        Some(n) => 1 + count(&n.left) + count(&n.right),
    }
}

fn min_entry<V>(link: &Link<V>) -> Option<(u64, &V)> {
    let mut cur = link.as_ref()?;
    while let Some(left) = cur.left.as_ref() {
        cur = left;
    }
    Some((cur.key, &cur.value))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys<V: Clone>(t: &PTreap<V>) -> Vec<u64> {
        t.iter().map(|(k, _)| k).collect()
    }

    #[test]
    fn empty_treap() {
        let t: PTreap<u32> = PTreap::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert!(t.min().is_none());
        assert!(t.max().is_none());
        assert!(t.get(0).is_none());
        assert!(t.first_where(|_| true).is_none());
        assert!(t.last_where(|_| true).is_none());
    }

    #[test]
    fn insert_and_get() {
        let t = PTreap::new()
            .insert(5, "five")
            .insert(1, "one")
            .insert(9, "nine");
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(5), Some(&"five"));
        assert_eq!(t.get(1), Some(&"one"));
        assert_eq!(t.get(9), Some(&"nine"));
        assert!(t.get(2).is_none());
        assert_eq!(t.min(), Some((1, &"one")));
        assert_eq!(t.max(), Some((9, &"nine")));
        assert_eq!(keys(&t), vec![1, 5, 9]);
    }

    #[test]
    fn insert_replaces_existing_key() {
        let t = PTreap::new().insert(3, 'a').insert(3, 'b');
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(3), Some(&'b'));
    }

    #[test]
    fn persistence_old_versions_unchanged() {
        let t0: PTreap<u64> = PTreap::new();
        let t1 = t0.insert(1, 10);
        let t2 = t1.insert(2, 20);
        let t3 = t2.split_ge(2);
        assert_eq!(keys(&t0), Vec::<u64>::new());
        assert_eq!(keys(&t1), vec![1]);
        assert_eq!(keys(&t2), vec![1, 2]);
        assert_eq!(keys(&t3), vec![2]);
        assert_eq!(t1.get(1), Some(&10));
    }

    #[test]
    fn split_ge_discards_prefix_and_updates_min() {
        let t: PTreap<u64> = (0..100).map(|k| (k, k * 2)).collect();
        let s = t.split_ge(40);
        assert_eq!(s.len(), 60);
        assert_eq!(s.min(), Some((40, &80)));
        assert_eq!(s.max(), Some((99, &198)));
        assert!(s.get(39).is_none());
        assert_eq!(s.get(40), Some(&80));
        // Splitting below the minimum is a no-op.
        let same = s.split_ge(0);
        assert_eq!(keys(&same), keys(&s));
        // Splitting above the maximum empties the treap.
        let empty = s.split_ge(1000);
        assert!(empty.is_empty());
        assert!(empty.min().is_none());
        assert!(empty.max().is_none());
    }

    #[test]
    fn first_where_monotone_predicate() {
        // Values are non-decreasing in key, mirroring sumenq/endleft fields.
        let t: PTreap<u64> = (1..=50).map(|k| (k, k * 3)).collect();
        for target in [1, 2, 3, 75, 149, 150] {
            let expect = (1..=50).find(|k| k * 3 >= target);
            let got = t.first_where(|v| *v >= target).map(|(k, _)| k);
            assert_eq!(got, expect, "target {target}");
        }
        assert!(t.first_where(|v| *v >= 151).is_none());
    }

    #[test]
    fn last_where_true_prefix_predicate() {
        let t: PTreap<u64> = (1..=50).map(|k| (k, k * 3)).collect();
        for target in [1, 4, 75, 150, 151] {
            let expect = (1..=50).rev().find(|k| k * 3 < target);
            let got = t.last_where(|v| *v < target).map(|(k, _)| k);
            assert_eq!(got, expect, "target {target}");
        }
    }

    #[test]
    fn consecutive_indices_usage_pattern() {
        // The queue's usage: always insert max+1, periodically split.
        let mut t: PTreap<u64> = PTreap::new().insert(0, 0);
        for i in 1..=500u64 {
            let next = t.max().unwrap().0 + 1;
            assert_eq!(next, i);
            t = t.insert(next, i * 7);
            if i % 64 == 0 {
                t = t.split_ge(i - 10);
            }
        }
        // Keys are consecutive min..=max.
        let ks = keys(&t);
        for w in ks.windows(2) {
            assert_eq!(w[1], w[0] + 1);
        }
        assert_eq!(*ks.last().unwrap(), 500);
    }

    #[test]
    fn depth_is_logarithmic_in_practice() {
        let t: PTreap<u64> = (0..4096).map(|k| (k, k)).collect();
        // Expected depth ~ 2.5 log2(n) ≈ 30 for n=4096; allow generous slack.
        assert!(t.depth() <= 60, "depth {} too large", t.depth());
    }

    #[test]
    fn searches_count_steps() {
        let t: PTreap<u64> = (0..1024).map(|k| (k, k)).collect();
        let (_, steps) = wfqueue_metrics::measure(|| {
            let _ = t.get(513);
        });
        assert!(steps.tree_node_visits > 0);
        assert!(steps.tree_node_visits <= 60);
    }

    #[test]
    fn debug_shows_entries() {
        let t = PTreap::new().insert(1, 'x');
        assert_eq!(format!("{t:?}"), "{1: 'x'}");
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;
        use std::collections::BTreeMap;

        #[derive(Debug, Clone)]
        enum Op {
            Insert(u64, u64),
            SplitGe(u64),
        }

        fn op_strategy() -> impl Strategy<Value = Op> {
            prop_oneof![
                (0u64..256, any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
                (0u64..300).prop_map(Op::SplitGe),
            ]
        }

        proptest! {
            #[test]
            fn matches_btreemap_model(ops in proptest::collection::vec(op_strategy(), 0..120)) {
                let mut model: BTreeMap<u64, u64> = BTreeMap::new();
                let mut treap: PTreap<u64> = PTreap::new();
                for op in ops {
                    match op {
                        Op::Insert(k, v) => {
                            model.insert(k, v);
                            treap = treap.insert(k, v);
                        }
                        Op::SplitGe(s) => {
                            model = model.split_off(&s);
                            treap = treap.split_ge(s);
                        }
                    }
                    // Full structural agreement after every step.
                    prop_assert_eq!(treap.len(), model.len());
                    let tpairs: Vec<(u64, u64)> = treap.iter().map(|(k, v)| (k, *v)).collect();
                    let mpairs: Vec<(u64, u64)> = model.iter().map(|(k, v)| (*k, *v)).collect();
                    prop_assert_eq!(tpairs, mpairs);
                    prop_assert_eq!(
                        treap.min().map(|(k, v)| (k, *v)),
                        model.iter().next().map(|(k, v)| (*k, *v))
                    );
                    prop_assert_eq!(
                        treap.max().map(|(k, v)| (k, *v)),
                        model.iter().next_back().map(|(k, v)| (*k, *v))
                    );
                }
            }

            #[test]
            fn get_matches_model(kvs in proptest::collection::btree_map(0u64..512, any::<u64>(), 0..100), probes in proptest::collection::vec(0u64..512, 1..50)) {
                let treap: PTreap<u64> = kvs.iter().map(|(k, v)| (*k, *v)).collect();
                for p in probes {
                    prop_assert_eq!(treap.get(p), kvs.get(&p));
                }
            }

            #[test]
            fn first_last_where_match_linear_scan(
                n in 1u64..200,
                threshold in 0u64..700,
            ) {
                // value = 3k is monotone in k.
                let treap: PTreap<u64> = (0..n).map(|k| (k, 3 * k)).collect();
                let first = (0..n).find(|k| 3 * k >= threshold);
                let last = (0..n).rev().find(|k| 3 * k < threshold);
                prop_assert_eq!(treap.first_where(|v| *v >= threshold).map(|(k, _)| k), first);
                prop_assert_eq!(treap.last_where(|v| *v < threshold).map(|(k, _)| k), last);
            }
        }
    }
}

impl<V: Clone + Send + Sync> wfqueue_pstore::PersistentOrderedMap<V> for PTreap<V> {
    const NAME: &'static str = "treap";

    fn empty() -> Self {
        PTreap::new()
    }

    fn len(&self) -> usize {
        PTreap::len(self)
    }

    fn get(&self, key: u64) -> Option<&V> {
        PTreap::get(self, key)
    }

    fn insert(&self, key: u64, value: V) -> Self {
        PTreap::insert(self, key, value)
    }

    fn split_ge(&self, threshold: u64) -> Self {
        PTreap::split_ge(self, threshold)
    }

    fn min(&self) -> Option<(u64, &V)> {
        PTreap::min(self)
    }

    fn max(&self) -> Option<(u64, &V)> {
        PTreap::max(self)
    }

    fn first_where(&self, pred: impl FnMut(&V) -> bool) -> Option<(u64, &V)> {
        PTreap::first_where(self, pred)
    }

    fn last_where(&self, pred: impl FnMut(&V) -> bool) -> Option<(u64, &V)> {
        PTreap::last_where(self, pred)
    }

    fn entries(&self) -> Vec<(u64, V)> {
        self.iter().map(|(k, v)| (k, v.clone())).collect()
    }

    fn depth(&self) -> usize {
        PTreap::depth(self)
    }
}

#[cfg(test)]
mod trait_conformance {
    use super::PTreap;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn model_conformance(ops in proptest::collection::vec(
            (0u8..3, 0u64..128, any::<u64>()), 0..150)) {
            wfqueue_pstore::check_against_model::<PTreap<u64>>(&ops);
        }
    }

    #[test]
    fn model_conformance_fixed_scripts() {
        wfqueue_pstore::check_against_model::<PTreap<u64>>(&[
            (0, 5, 50),
            (0, 1, 10),
            (0, 9, 90),
            (2, 5, 0),
            (1, 4, 0),
            (2, 1, 0),
            (0, 4, 44),
            (1, 100, 0),
            (0, 3, 33),
        ]);
    }
}
