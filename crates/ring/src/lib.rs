//! A wait-free bounded MPMC circular queue on single-word CAS, in the
//! mould of wCQ (Nikolaev & Ravindran, arXiv:2201.02179).
//!
//! This crate is the workspace's *third* queue core, next to the paper's
//! §3 unbounded and §6 bounded-space ordering-tree queues
//! (`wfqueue::unbounded` / `wfqueue::bounded`). It is **not** part of
//! the paper mapping (see MAP.md): the PODC 2023 queue derives FIFO
//! order from an ordering tree of batched blocks, while this ring
//! derives it from cycle-tagged tickets over a power-of-two slot array —
//! the design lineage is SCQ/wCQ, with the cache-conscious slot layout
//! informed by Torquati's TR-10-20 SPSC rings (one cache line per slot,
//! split head/tail counters on their own lines). Its job in this
//! repository is to make the *capacity-bounded* path fast: the §6 tree
//! pays ~25–70× the unbounded queue's cost for bounded space, whereas
//! the ring's fast path is a handful of shared-memory steps.
//!
//! # Protocol
//!
//! The ring has `n = capacity.next_power_of_two()` slots. Each slot is a
//! single `AtomicU64` packing a 16-bit **phase** (cycle tag) with a
//! 48-bit pointer to the boxed value: `(phase << 48) | ptr`. Two global
//! ticket counters, `head` and `tail`, are claimed by CAS. The slot for
//! ticket `t` is `t & (n - 1)`, and its life cycle is
//!
//! ```text
//! (phase(t)   | 0)    EMPTY  — awaiting enqueue ticket t
//! (phase(t+1) | ptr)  FULL   — awaiting dequeue ticket t
//! (phase(t+n) | 0)    EMPTY  — freed, awaiting enqueue ticket t+n
//! ```
//!
//! where `phase(t) = t mod 2¹⁶`. Every transition is a single-word CAS
//! whose *expected* value is the exact packed word, so stale competitors
//! fail harmlessly (ABA is bounded by the 16-bit phase; see *Phase
//! width* below).
//!
//! **Enqueue** claims ticket `t` by `CAS(tail, t, t+1)` after checking
//! `tail - head < capacity` (reading `tail` before `head`, so a `Full`
//! answer is truthful: at the instant `head` was read the occupancy was
//! at least `capacity`). It then publishes an announcement record and
//! fills the slot `EMPTY → FULL`. **Dequeue** claims ticket `h` by
//! `CAS(head, h, h+1)` after checking `head < tail` (reading `head`
//! before `tail`, so an `Empty` answer is truthful at the instant `tail`
//! was read), publishes a record, waits for the slot to become FULL,
//! delivers the pointer into its record's `result` word, and frees the
//! slot for the next lap.
//!
//! # Helping (wait-freedom of the slot handshake)
//!
//! After claiming a ticket, an operation publishes a per-process
//! **record** — `(tag | ticket)` plus the value pointer — before touching
//! its slot. Any thread that finds itself waiting on a slot runs
//! `help_all` (private): it scans every record and finishes the announced
//! obligation itself — filling the slot for a stalled enqueuer, or
//! delivering the value and freeing the slot for a stalled dequeuer. All
//! helper steps are CAS with exact expected words, so help is
//! *idempotent*: helpers install the **same** pointer at the **same**
//! ticket, the slot CAS has exactly one winner, and a dequeue's delivery
//! CAS (`result: (phase|0) → (phase|ptr)`) is phase-guarded so a helper
//! stalled across the record's reuse cannot corrupt a later operation.
//! Hence a claimed operation is finished by *peers* even if its owner
//! never runs again — the wCQ ingredient that makes the handshake
//! wait-free rather than merely lock-free.
//!
//! Two windows fall short of that guarantee, both deliberate
//! simplifications over full wCQ and documented in DESIGN.md:
//!
//! 1. **Claim → publish gap.** The record is published *after* the
//!    ticket CAS (publishing before it would let helpers commit an
//!    operation whose claim then fails). A thread preempted inside this
//!    constant-instruction window leaves its ticket temporarily
//!    unhelpable; waiters spin-yield through it.
//! 2. **Ticket claiming.** Tickets are claimed by a CAS retry loop
//!    (lock-free, system-wide progress) rather than wCQ's FAA-plus-
//!    threshold machinery — under claim contention an individual thread
//!    can retry, though never unboundedly often in practice because each
//!    failure means another operation claimed a ticket.
//!
//! # Phase width
//!
//! Phases are 16 bits, so a slot's packed words repeat only after
//! `2¹⁶` tickets pass through the *same* slot position. A helper or
//! owner stalled across ≥ `2¹⁶` consecutive tickets of progress while
//! holding a decoded word could mistake a lapped state for its own —
//! the classic bounded-tag compromise every finite-cycle ring makes
//! (wCQ's cycles are wider but equally finite). [`Ring::new`] caps the
//! capacity at `2¹⁵` so the three states of one ticket are always
//! distinct, and `debug_assert!`s verify the 48-bit pointer packing.
//!
//! # Examples
//!
//! ```
//! let ring: wfqueue_ring::Ring<u32> = wfqueue_ring::Ring::new(4, 2);
//! let mut h = ring.register().unwrap();
//! assert!(h.try_enqueue(7).is_ok());
//! assert!(h.try_enqueue(8).is_ok());
//! assert_eq!(h.dequeue(), Some(7));
//! assert_eq!(h.dequeue(), Some(8));
//! assert_eq!(h.dequeue(), None);
//! ```

#![deny(missing_docs)]

use std::marker::PhantomData;

use crossbeam_utils::CachePadded;
use wfqueue_metrics as metrics;
use wfqueue_sync::atomic::{AtomicU64, AtomicUsize, Ordering};

// ---------------------------------------------------------------------------
// Word packing
// ---------------------------------------------------------------------------

/// Bits of a slot/result word holding the value pointer (low bits).
const PTR_BITS: u32 = 48;
/// Mask for the pointer field of a packed word.
const PTR_MASK: u64 = (1 << PTR_BITS) - 1;
/// Mask for the 16-bit phase (cycle tag) of a ticket.
const PHASE_MASK: u64 = 0xFFFF;
/// Largest logical capacity: `2¹⁵`, so that for every ticket `t` the
/// phases of `t`, `t + 1` and `t + n` are pairwise distinguishable
/// (together with the pointer field) within the 16-bit phase space.
pub const MAX_CAPACITY: usize = 1 << 15;

/// Record tag: no operation announced.
const TAG_IDLE: u64 = 0;
/// Record tag: an enqueue for the record's ticket is in flight.
const TAG_ENQ: u64 = 1;
/// Record tag: a dequeue for the record's ticket is in flight.
const TAG_DEQ: u64 = 2;
/// Shift of the 2-bit tag inside a record word (ticket in the low 62).
const TAG_SHIFT: u32 = 62;

/// The 16-bit cycle tag of a ticket.
fn phase(ticket: u64) -> u64 {
    ticket & PHASE_MASK
}

/// Packs a phase and a 48-bit pointer into one slot/result word.
fn pack(phase: u64, ptr: u64) -> u64 {
    debug_assert!(ptr <= PTR_MASK, "value pointer exceeds 48 bits");
    (phase << PTR_BITS) | ptr
}

/// Splits a slot/result word into `(phase, ptr)`.
fn unpack(word: u64) -> (u64, u64) {
    (word >> PTR_BITS, word & PTR_MASK)
}

/// Packs a record word from a tag and a ticket.
fn rec_word(tag: u64, ticket: u64) -> u64 {
    debug_assert!(ticket < (1 << TAG_SHIFT), "ticket exceeds 62 bits");
    (tag << TAG_SHIFT) | ticket
}

/// Splits a record word into `(tag, ticket)`.
fn rec_unpack(word: u64) -> (u64, u64) {
    (word >> TAG_SHIFT, word & ((1 << TAG_SHIFT) - 1))
}

// ---------------------------------------------------------------------------
// SeqCst + metrics wrappers
// ---------------------------------------------------------------------------
//
// Every shared-memory step of the ring protocol goes through these three
// helpers, which centralize the memory ordering and the step accounting.

/// One shared load.
// ORDERING: the whole ring protocol runs under SeqCst — its correctness
// argument (module docs) is stated in the sequentially-consistent
// interleaving model that the `wfqueue_sync` checker explores, and the
// Full/Empty linearization points lean on a total order of the
// tail-read/head-read pairs. Every slot, counter and record access is
// funneled through `sc_load`/`sc_store`/`sc_cas`.
fn sc_load(a: &AtomicU64) -> u64 {
    metrics::record_shared_load();
    // ORDERING: see above — the ring protocol is uniformly SeqCst.
    a.load(Ordering::SeqCst)
}

/// One shared store.
// ORDERING: see `sc_load` — the ring protocol is uniformly SeqCst.
fn sc_store(a: &AtomicU64, v: u64) {
    metrics::record_shared_store();
    a.store(v, Ordering::SeqCst);
}

/// One shared CAS; returns `Ok(previous)` on success.
// ORDERING: see `sc_load` — the ring protocol is uniformly SeqCst.
fn sc_cas(a: &AtomicU64, current: u64, new: u64) -> Result<u64, u64> {
    let r = a.compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst);
    metrics::record_cas(r.is_ok());
    r
}

// ---------------------------------------------------------------------------
// The ring
// ---------------------------------------------------------------------------

/// One process's announcement record: the helping interface.
///
/// `word` packs `(tag | ticket)`; it is written only by the record's
/// owner (published after a successful ticket claim, cleared to
/// [`TAG_IDLE`] when the operation completes). `aux` carries the
/// enqueue's value pointer. `result` is the operation's completion
/// channel: initialized by the owner to `(phase(ticket) | 0)` before the
/// record is published, and CASed to `(phase(ticket) | ptr)` by whoever
/// finishes the slot handshake — the phase tag makes a stale helper's
/// delivery CAS fail against any later operation's `result`.
struct Record {
    word: AtomicU64,
    aux: AtomicU64,
    result: AtomicU64,
}

impl Record {
    fn new() -> Self {
        Record {
            word: AtomicU64::new(rec_word(TAG_IDLE, 0)),
            aux: AtomicU64::new(0),
            result: AtomicU64::new(0),
        }
    }
}

/// A wait-free bounded MPMC circular queue (wCQ-style).
///
/// Values are heap-boxed and owned by the ring while enqueued; each slot
/// is one cache-padded `AtomicU64` packing a 16-bit cycle tag with the
/// 48-bit box pointer. See the [module docs](self) for the protocol and
/// its progress guarantees.
///
/// Handles are registered up to a fixed budget (like the tree queues'
/// capped `register()`); each handle owns one announcement record used
/// by the helping mechanism.
///
/// # Examples
///
/// ```
/// use wfqueue_ring::Ring;
///
/// let ring: Ring<String> = Ring::new(2, 1);
/// let mut h = ring.register().unwrap();
/// assert!(h.try_enqueue("a".into()).is_ok());
/// assert!(h.try_enqueue("b".into()).is_ok());
/// // Logical capacity is exact, not rounded to the slot count:
/// assert_eq!(h.try_enqueue("c".into()), Err("c".to_string()));
/// assert_eq!(h.dequeue().as_deref(), Some("a"));
/// ```
pub struct Ring<T> {
    /// `n` cycle-tagged slots, one cache line each (TR-10-20 layout).
    slots: Box<[CachePadded<AtomicU64>]>,
    /// `n - 1`, for ticket → slot indexing (`n` is a power of two).
    mask: u64,
    /// Logical capacity (exact; `<= n`).
    capacity: usize,
    /// Next enqueue ticket, claimed by CAS.
    tail: CachePadded<AtomicU64>,
    /// Next dequeue ticket, claimed by CAS.
    head: CachePadded<AtomicU64>,
    /// One announcement record per registered handle.
    records: Box<[CachePadded<Record>]>,
    /// Number of handles registered so far (capped at `records.len()`).
    registered: AtomicUsize,
    /// The ring owns the boxed `T`s reachable from its slots.
    _owns: PhantomData<Box<T>>,
}

// SAFETY: the ring transfers `T` values between threads through its
// slots (a dequeuer may unbox a value enqueued by another thread), which
// is exactly the `T: Send` contract; all shared state is atomics.
unsafe impl<T: Send> Send for Ring<T> {}
// SAFETY: as above — concurrent handles only exchange `T: Send` values
// via atomic words; no `&T` is ever shared across threads.
unsafe impl<T: Send> Sync for Ring<T> {}

impl<T> Ring<T> {
    /// Creates a ring with exact logical `capacity`, registering at most
    /// `max_handles` handles.
    ///
    /// The slot array is `capacity.next_power_of_two()` long, but the
    /// counter-based full check enforces `capacity` exactly.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or exceeds [`MAX_CAPACITY`], or if
    /// `max_handles` is zero.
    #[must_use]
    pub fn new(capacity: usize, max_handles: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        assert!(
            capacity <= MAX_CAPACITY,
            "ring capacity {capacity} exceeds MAX_CAPACITY ({MAX_CAPACITY}): \
             the 16-bit cycle tags could no longer separate a ticket's states"
        );
        assert!(max_handles > 0, "need at least one handle");
        let n = capacity.next_power_of_two();
        let slots = (0..n as u64)
            // Slot i starts EMPTY awaiting enqueue ticket i.
            .map(|i| CachePadded::new(AtomicU64::new(pack(phase(i), 0))))
            .collect();
        let records = (0..max_handles)
            .map(|_| CachePadded::new(Record::new()))
            .collect();
        Ring {
            slots,
            mask: n as u64 - 1,
            capacity,
            tail: CachePadded::new(AtomicU64::new(0)),
            head: CachePadded::new(AtomicU64::new(0)),
            records,
            registered: AtomicUsize::new(0),
            _owns: PhantomData,
        }
    }

    /// The exact logical capacity (maximum in-flight values).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Maximum number of handles [`Ring::register`] can hand out.
    #[must_use]
    pub fn max_handles(&self) -> usize {
        self.records.len()
    }

    /// A recent-past length snapshot (`tail - head`): claimed tickets,
    /// counting in-flight operations.
    #[must_use]
    pub fn approx_len(&self) -> usize {
        let t = sc_load(&self.tail);
        let h = sc_load(&self.head);
        t.saturating_sub(h) as usize
    }

    /// Acquires a handle, or `None` when the handle budget is exhausted.
    #[must_use]
    pub fn register(&self) -> Option<RingHandle<'_, T>> {
        // ORDERING: the registration counter is a capped claim like the
        // tree queues' `register()`; SeqCst keeps it in the protocol's
        // single SC order (it is off the hot path entirely).
        let mut cur = self.registered.load(Ordering::SeqCst);
        loop {
            if cur >= self.records.len() {
                return None;
            }
            // ORDERING: see above — capped registration claim.
            match self
                .registered
                .compare_exchange(cur, cur + 1, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => {
                    return Some(RingHandle {
                        ring: self,
                        pid: cur,
                    })
                }
                Err(now) => cur = now,
            }
        }
    }

    /// Runs one helping pass over every record except `skip` (the
    /// caller's own): finishes any announced obligation whose slot
    /// transition is currently possible. Called by operations that find
    /// themselves waiting on a slot, so a stalled peer's claimed ticket
    /// is finished by whoever needs it done.
    fn help_all(&self, skip: usize) {
        for (pid, rec) in self.records.iter().enumerate() {
            if pid != skip {
                self.try_help(rec);
            }
        }
    }

    /// Attempts to finish the operation announced in `rec`.
    ///
    /// Reads `(tag, ticket)`, then `aux`, then re-reads the word: since
    /// record words carry full 62-bit tickets (never reused), an
    /// unchanged word proves `(ticket, aux)` belong to the same
    /// announcement. Every subsequent step is a CAS with an exact
    /// expected word, so a helper that loses any race — including to the
    /// record's own owner — fails harmlessly.
    fn try_help(&self, rec: &Record) {
        let w = sc_load(&rec.word);
        let (tag, ticket) = rec_unpack(w);
        if tag == TAG_IDLE {
            return;
        }
        let aux = sc_load(&rec.aux);
        if sc_load(&rec.word) != w {
            return; // the record moved on; (ticket, aux) may be torn
        }
        metrics::adversary_yield();
        let slot = &self.slots[(ticket & self.mask) as usize];
        let n = self.mask + 1;
        match tag {
            TAG_ENQ => {
                // Fill the stalled enqueue's slot with *its* pointer at
                // *its* ticket; one winner ever, so help is idempotent.
                let empty = pack(phase(ticket), 0);
                let full = pack(phase(ticket.wrapping_add(1)), aux);
                if sc_cas(slot, empty, full).is_ok() {
                    // Mark the record complete so the owner can return
                    // even if the value is consumed before it looks at
                    // the slot again. Phase-guarded against record reuse.
                    let _ = sc_cas(
                        &rec.result,
                        pack(phase(ticket), 0),
                        pack(phase(ticket), aux),
                    );
                    metrics::record_help();
                }
            }
            TAG_DEQ => {
                let s = sc_load(slot);
                let (p, v) = unpack(s);
                if p == phase(ticket.wrapping_add(1)) && v != 0 {
                    // The slot holds the dequeue's value: deliver it into
                    // the record (phase-guarded) and free the slot for
                    // the next lap (exact-word CAS, one winner).
                    if sc_cas(&rec.result, pack(phase(ticket), 0), pack(phase(ticket), v)).is_ok() {
                        metrics::record_help();
                    }
                    let _ = sc_cas(slot, s, pack(phase(ticket.wrapping_add(n)), 0));
                }
            }
            _ => {}
        }
    }
}

impl<T> Drop for Ring<T> {
    fn drop(&mut self) {
        for slot in self.slots.iter_mut() {
            let (_, ptr) = unpack(*slot.get_mut());
            if ptr != 0 {
                // SAFETY: a non-null slot pointer is a `Box<T>` leaked by
                // an enqueue and never delivered to a dequeuer (delivery
                // clears the slot); `&mut self` proves no handle is still
                // operating, so this drop is the unique owner.
                drop(unsafe { Box::from_raw(ptr as *mut T) });
            }
        }
    }
}

impl<T> std::fmt::Debug for Ring<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ring")
            .field("capacity", &self.capacity)
            .field("slots", &self.slots.len())
            .field("max_handles", &self.records.len())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Handles
// ---------------------------------------------------------------------------

/// A registered per-process handle to a [`Ring`].
///
/// Operations take `&mut self`: one handle serves one thread at a time
/// (its announcement record admits a single in-flight operation).
#[derive(Debug)]
pub struct RingHandle<'a, T> {
    ring: &'a Ring<T>,
    pid: usize,
}

impl<T> RingHandle<'_, T> {
    /// This handle's process id (its record index).
    #[must_use]
    pub fn pid(&self) -> usize {
        self.pid
    }

    /// The ring's exact logical capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.ring.capacity
    }

    /// Appends `value` to the back of the ring, or returns it when the
    /// ring is full.
    ///
    /// The `Full` answer is linearizable: it is returned only when, at
    /// one instant inside the call, `capacity` values (counting claimed
    /// in-flight enqueues) were present.
    pub fn try_enqueue(&mut self, value: T) -> Result<(), T> {
        let cap = self.ring.capacity as u64;
        // Claim a ticket, or report Full.
        let ticket = loop {
            let t = sc_load(&self.ring.tail);
            let h = sc_load(&self.ring.head);
            // `head` is read after `tail` and only grows, so
            // `t - h >= cap` means occupancy was >= cap at the `head`
            // read. A stale `h > t` (tail moved on) saturates to 0 and
            // the claim CAS below fails instead.
            if t.saturating_sub(h) >= cap {
                return Err(value);
            }
            metrics::adversary_yield();
            if sc_cas(&self.ring.tail, t, t + 1).is_ok() {
                break t;
            }
        };
        let ptr = Box::into_raw(Box::new(value)) as u64;
        self.announce_and_fill(ticket, ptr);
        Ok(())
    }

    /// Appends a whole batch, all-or-nothing: either every value is
    /// enqueued (claiming `values.len()` consecutive tickets with one
    /// CAS, so the batch is contiguous in FIFO order), or the ring had
    /// insufficient free space at one instant and the batch is returned
    /// untouched.
    pub fn try_enqueue_batch(&mut self, values: Vec<T>) -> Result<(), Vec<T>> {
        let k = values.len() as u64;
        if k == 0 {
            return Ok(());
        }
        let cap = self.ring.capacity as u64;
        if k > cap {
            return Err(values);
        }
        let base = loop {
            let t = sc_load(&self.ring.tail);
            let h = sc_load(&self.ring.head);
            if t.saturating_sub(h) + k > cap {
                return Err(values);
            }
            metrics::adversary_yield();
            if sc_cas(&self.ring.tail, t, t + k).is_ok() {
                break t;
            }
        };
        // Fill ticket by ticket, republishing the record for each: the
        // currently-announced (lowest unfilled) ticket is helpable;
        // later tickets of a stalled batch wait for their owner — see
        // DESIGN.md on the batch window.
        for (i, value) in values.into_iter().enumerate() {
            let ptr = Box::into_raw(Box::new(value)) as u64;
            self.announce_and_fill(base + i as u64, ptr);
        }
        Ok(())
    }

    /// Publishes this handle's record for enqueue ticket `ticket` with
    /// value pointer `ptr`, completes the slot fill (with helping), and
    /// retires the record.
    fn announce_and_fill(&mut self, ticket: u64, ptr: u64) {
        let rec = &self.ring.records[self.pid];
        // Owner-only initialization while the record is IDLE, published
        // by the `word` store: helpers read `word` first.
        sc_store(&rec.result, pack(phase(ticket), 0));
        sc_store(&rec.aux, ptr);
        sc_store(&rec.word, rec_word(TAG_ENQ, ticket));
        let slot = &self.ring.slots[(ticket & self.ring.mask) as usize];
        let empty = pack(phase(ticket), 0);
        let full = pack(phase(ticket.wrapping_add(1)), ptr);
        loop {
            let s = sc_load(slot);
            if s == empty {
                metrics::adversary_yield();
                if sc_cas(slot, empty, full).is_ok() {
                    break;
                }
                continue;
            }
            if s == full {
                break; // a helper filled it for us
            }
            // A helper may have filled the slot *and* a dequeuer consumed
            // it already — the helper marks our record's `result` when
            // its fill CAS wins, so that is our completion signal.
            let (_, delivered) = unpack(sc_load(&rec.result));
            if delivered != 0 {
                break;
            }
            // The slot is still occupied by an earlier ticket (a stalled
            // predecessor dequeue, or an enqueue further behind): help
            // whoever is announced, then retry.
            self.ring.help_all(self.pid);
            metrics::adversary_yield();
            wfqueue_sync::thread::yield_now();
        }
        sc_store(&rec.word, rec_word(TAG_IDLE, 0));
    }

    /// Removes and returns the front value, or `None` if the ring is
    /// empty (linearized at the `tail` read that observed `head == tail`).
    pub fn dequeue(&mut self) -> Option<T> {
        // Claim a ticket, or report Empty.
        let ticket = loop {
            let h = sc_load(&self.ring.head);
            let t = sc_load(&self.ring.tail);
            // `tail` is read after `head` and `head <= tail` always, so
            // `t == h` pins an instant where the ring was empty.
            if t <= h {
                return None;
            }
            metrics::adversary_yield();
            if sc_cas(&self.ring.head, h, h + 1).is_ok() {
                break h;
            }
        };
        let rec = &self.ring.records[self.pid];
        let n = self.ring.mask + 1;
        // Owner-only init + publication, as in `announce_and_fill`.
        sc_store(&rec.result, pack(phase(ticket), 0));
        sc_store(&rec.word, rec_word(TAG_DEQ, ticket));
        let slot = &self.ring.slots[(ticket & self.ring.mask) as usize];
        loop {
            let s = sc_load(slot);
            let (p, v) = unpack(s);
            if p == phase(ticket.wrapping_add(1)) && v != 0 {
                // Our FULL word: deliver (phase-guarded, idempotent with
                // any helper — same unique `v`) and free the slot.
                let _ = sc_cas(&rec.result, pack(phase(ticket), 0), pack(phase(ticket), v));
                metrics::adversary_yield();
                let _ = sc_cas(slot, s, pack(phase(ticket.wrapping_add(n)), 0));
                break;
            }
            let (_, delivered) = unpack(sc_load(&rec.result));
            if delivered != 0 {
                // A helper delivered for us. The slot stays FULL until
                // someone frees it, so re-read once: if the helper has
                // not freed it yet, do it ourselves — the next lap must
                // never depend on a stalled helper resuming.
                let s2 = sc_load(slot);
                let (p2, v2) = unpack(s2);
                if p2 == phase(ticket.wrapping_add(1)) && v2 != 0 {
                    let _ = sc_cas(slot, s2, pack(phase(ticket.wrapping_add(n)), 0));
                }
                break;
            }
            // The enqueue for our ticket (or a predecessor's handshake on
            // this slot) is in flight: help, then retry.
            self.ring.help_all(self.pid);
            metrics::adversary_yield();
            wfqueue_sync::thread::yield_now();
        }
        let (_, ptr) = unpack(sc_load(&rec.result));
        debug_assert!(ptr != 0, "dequeue completed without a delivered value");
        sc_store(&rec.word, rec_word(TAG_IDLE, 0));
        // SAFETY: `ptr` came out of `Box::into_raw` in an enqueue; the
        // delivery CAS publishes each pointer to exactly one record
        // result (the slot's FULL word has one fill winner and one free
        // winner), and only the record's owner — us — unboxes it.
        Some(*unsafe { Box::from_raw(ptr as *mut T) })
    }

    /// Performs up to `count` dequeues, stopping at the first `Empty`
    /// response; the returned vector has length `count` with the
    /// responses in order (a `Some`-prefix, then `None`s).
    pub fn dequeue_batch(&mut self, count: usize) -> Vec<Option<T>> {
        let mut out = Vec::with_capacity(count);
        while out.len() < count {
            match self.dequeue() {
                Some(v) => out.push(Some(v)),
                None => break,
            }
        }
        out.resize_with(count, || None);
        out
    }
}

// ---------------------------------------------------------------------------
// Sharding integration
// ---------------------------------------------------------------------------

/// A sharded composite of rings: `wfqueue_shard::ShardedQueue` fanning
/// out over [`Ring`] shards (per-producer FIFO, like the tree-backed
/// composites).
///
/// # Examples
///
/// ```
/// use wfqueue_ring::{Ring, ShardedRing};
/// use wfqueue_shard::{Routing, ShardHandle};
///
/// let shards = (0..2).map(|_| Ring::new(8, 4)).collect();
/// let q: ShardedRing<u32> = ShardedRing::with_shards(shards, 4, Routing::Rendezvous);
/// let mut h = q.try_handle().unwrap();
/// h.enqueue(5);
/// assert_eq!(h.dequeue(), Some(5));
/// ```
pub type ShardedRing<T> = wfqueue_shard::ShardedQueue<Ring<T>>;

impl<T: Send> wfqueue_shard::Shard for Ring<T> {
    type Item = T;
    type Handle<'a>
        = RingHandle<'a, T>
    where
        Self: 'a;

    fn register(&self) -> Option<Self::Handle<'_>> {
        Ring::register(self)
    }

    fn capacity(&self) -> usize {
        self.max_handles()
    }

    fn approx_len(&self) -> usize {
        Ring::approx_len(self)
    }
}

impl<T: Send> wfqueue_shard::ShardHandle for RingHandle<'_, T> {
    type Item = T;

    /// Appends `value`, spinning (with yields and helping) while the
    /// ring is full: the uniform `ShardHandle` interface has no failure
    /// path. Use [`RingHandle::try_enqueue`] directly for backpressure.
    fn enqueue(&mut self, mut value: T) {
        loop {
            match self.try_enqueue(value) {
                Ok(()) => return,
                Err(back) => {
                    value = back;
                    self.ring.help_all(self.pid);
                    wfqueue_sync::thread::yield_now();
                }
            }
        }
    }

    fn dequeue(&mut self) -> Option<T> {
        RingHandle::dequeue(self)
    }

    /// Enqueues the whole batch, spinning while the ring lacks space for
    /// *all* of it (the claim is all-or-nothing, keeping the batch
    /// contiguous).
    ///
    /// # Panics
    ///
    /// Panics if the batch alone exceeds the ring's capacity — it could
    /// never fit, so spinning would hang.
    fn enqueue_batch(&mut self, mut values: Vec<Self::Item>) {
        assert!(
            values.len() <= self.ring.capacity,
            "batch of {} exceeds ring capacity {}",
            values.len(),
            self.ring.capacity
        );
        loop {
            match self.try_enqueue_batch(values) {
                Ok(()) => return,
                Err(back) => {
                    values = back;
                    self.ring.help_all(self.pid);
                    wfqueue_sync::thread::yield_now();
                }
            }
        }
    }

    fn dequeue_batch(&mut self, count: usize) -> Vec<Option<Self::Item>> {
        RingHandle::dequeue_batch(self, count)
    }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use wfqueue_sync::thread;

    #[test]
    fn fifo_single_thread() {
        let ring: Ring<u32> = Ring::new(8, 1);
        let mut h = ring.register().unwrap();
        for i in 0..8 {
            assert!(h.try_enqueue(i).is_ok());
        }
        for i in 0..8 {
            assert_eq!(h.dequeue(), Some(i));
        }
        assert_eq!(h.dequeue(), None);
    }

    #[test]
    fn capacity_is_exact_not_rounded() {
        // 3 rounds to 4 slots, but the logical capacity stays 3.
        let ring: Ring<u32> = Ring::new(3, 1);
        let mut h = ring.register().unwrap();
        for i in 0..3 {
            assert!(h.try_enqueue(i).is_ok());
        }
        assert_eq!(h.try_enqueue(99), Err(99));
        assert_eq!(h.dequeue(), Some(0));
        assert!(h.try_enqueue(3).is_ok());
        assert_eq!(h.try_enqueue(100), Err(100));
    }

    #[test]
    fn wraps_many_laps() {
        let ring: Ring<u64> = Ring::new(2, 1);
        let mut h = ring.register().unwrap();
        for i in 0..10_000u64 {
            assert!(h.try_enqueue(i).is_ok());
            assert_eq!(h.dequeue(), Some(i));
        }
        assert_eq!(h.dequeue(), None);
    }

    #[test]
    fn batch_is_all_or_nothing() {
        let ring: Ring<u32> = Ring::new(4, 1);
        let mut h = ring.register().unwrap();
        assert!(h.try_enqueue(0).is_ok());
        // 4 don't fit next to the 1 in flight.
        let back = h.try_enqueue_batch(vec![1, 2, 3, 4]).unwrap_err();
        assert_eq!(back, vec![1, 2, 3, 4]);
        // 3 do, contiguously.
        assert!(h.try_enqueue_batch(vec![1, 2, 3]).is_ok());
        assert_eq!(
            h.dequeue_batch(5),
            vec![Some(0), Some(1), Some(2), Some(3), None]
        );
    }

    #[test]
    fn oversized_batch_rejected_without_claiming() {
        let ring: Ring<u32> = Ring::new(2, 1);
        let mut h = ring.register().unwrap();
        assert!(h.try_enqueue_batch(vec![1, 2, 3]).is_err());
        assert_eq!(ring.approx_len(), 0);
        assert!(h.try_enqueue_batch(Vec::new()).is_ok());
    }

    #[test]
    fn register_budget_is_capped() {
        let ring: Ring<u8> = Ring::new(1, 2);
        let a = ring.register();
        let b = ring.register();
        assert!(a.is_some() && b.is_some());
        assert!(ring.register().is_none());
        assert_eq!(ring.max_handles(), 2);
        assert_eq!(ring.capacity(), 1);
    }

    #[test]
    fn drop_frees_in_flight_values() {
        let ring: Ring<Arc<u8>> = Ring::new(4, 1);
        let value = Arc::new(7u8);
        {
            let mut h = ring.register().unwrap();
            h.try_enqueue(Arc::clone(&value)).unwrap();
            h.try_enqueue(Arc::clone(&value)).unwrap();
        }
        assert_eq!(Arc::strong_count(&value), 3);
        drop(ring);
        assert_eq!(Arc::strong_count(&value), 1);
    }

    #[test]
    fn mpmc_no_loss_no_duplication() {
        const PRODUCERS: usize = 3;
        const CONSUMERS: usize = 3;
        const PER_PRODUCER: u64 = 2_000;
        let ring: Ring<u64> = Ring::new(8, PRODUCERS + CONSUMERS);
        thread::scope(|s| {
            for p in 0..PRODUCERS {
                let mut h = ring.register().unwrap();
                s.spawn(move || {
                    for i in 0..PER_PRODUCER {
                        let v = (p as u64) << 32 | i;
                        let mut v = v;
                        while let Err(back) = h.try_enqueue(v) {
                            v = back;
                            thread::yield_now();
                        }
                    }
                });
            }
            let mut collectors = Vec::new();
            for _ in 0..CONSUMERS {
                let mut h = ring.register().unwrap();
                collectors.push(s.spawn(move || {
                    let mut got = Vec::new();
                    let mut dry = 0;
                    while dry < 10_000 {
                        match h.dequeue() {
                            Some(v) => {
                                got.push(v);
                                dry = 0;
                            }
                            None => {
                                dry += 1;
                                thread::yield_now();
                            }
                        }
                    }
                    got
                }));
            }
            let mut all: Vec<u64> = collectors
                .into_iter()
                .flat_map(|c| c.join().unwrap())
                .collect();
            // Per-producer FIFO: each producer's values must come out in
            // order when filtered from any single consumer's stream is
            // too weak across consumers, so check global set + per-
            // producer order within the merged, stably-tagged stream is
            // not derivable — assert the multiset instead, plus counts.
            all.sort_unstable();
            let mut expect: Vec<u64> = (0..PRODUCERS as u64)
                .flat_map(|p| (0..PER_PRODUCER).map(move |i| p << 32 | i))
                .collect();
            expect.sort_unstable();
            assert_eq!(all, expect, "values lost or duplicated");
        });
    }

    #[test]
    fn per_consumer_sees_per_producer_fifo() {
        // One producer, one consumer, tiny ring: the consumer must see
        // strictly increasing values.
        let ring: Ring<u64> = Ring::new(1, 2);
        thread::scope(|s| {
            let mut tx = ring.register().unwrap();
            s.spawn(move || {
                for i in 0..5_000u64 {
                    let mut v = i;
                    while let Err(back) = tx.try_enqueue(v) {
                        v = back;
                        thread::yield_now();
                    }
                }
            });
            let mut rx = ring.register().unwrap();
            let mut last = None;
            let mut seen = 0u64;
            while seen < 5_000 {
                if let Some(v) = rx.dequeue() {
                    assert!(
                        last.is_none_or(|l| v > l),
                        "FIFO violated: {v} after {last:?}"
                    );
                    last = Some(v);
                    seen += 1;
                } else {
                    thread::yield_now();
                }
            }
        });
    }

    #[test]
    fn sharded_ring_round_trips() {
        use wfqueue_shard::Routing;
        let shards = (0..2).map(|_| Ring::new(16, 4)).collect();
        let q: ShardedRing<u64> = ShardedRing::with_shards(shards, 4, Routing::Rendezvous);
        let mut h = q.try_handle().unwrap();
        h.enqueue_batch(vec![1, 2, 3]);
        let mut got: Vec<u64> = (0..3).map(|_| h.dequeue().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2, 3]);
        assert_eq!(h.dequeue(), None);
    }
}
