//! Experiment E3 — Theorem 22 (dequeue bound, `p` axis): a non-null
//! `Dequeue` takes `O(log p · log c + log q_e + log q_d)` steps; with the
//! queue size held roughly constant and contention `c = p`, the dominant
//! term is `log² p`.
//!
//! Reported series: mean/max steps per successful dequeue vs `p` on a
//! prefilled queue under a dequeue-leaning mix, with the `steps / log²2(p)`
//! ratio that should flatten if the bound is tight.

use wfqueue_bench::exp;
use wfqueue_harness::queue_api::{Ms, WfBounded, WfUnbounded};
use wfqueue_harness::table::{f1, f2, Table};
use wfqueue_harness::workload::{run_workload, WorkloadSpec};

fn main() {
    let mut table = Table::new(
        "E3: steps per non-null dequeue vs p (Theorem 22: O(log^2 p) at fixed q)",
        &[
            "p",
            "log2(p)^2",
            "wf-unb avg",
            "wf-unb /log^2",
            "wf-unb max",
            "wf-bnd avg",
            "ms avg",
        ],
    );
    for &p in exp::p_sweep() {
        // Balanced mix over a large prefill keeps q near-constant while
        // keeping all p processes contending.
        let s = WorkloadSpec {
            threads: p,
            ops_per_thread: (40_000 / p).max(500),
            enqueue_permille: 500,
            prefill: 4_096,
            seed: 0xE3,
        };
        let unb = run_workload(&WfUnbounded::new(p), &s);
        let bnd = run_workload(&WfBounded::new(p), &s);
        let ms = run_workload(&Ms::new(), &s);
        let lg = exp::log2(p.max(2) as f64);
        table.row_owned(vec![
            p.to_string(),
            f1(lg * lg),
            f1(unb.dequeue_hit.steps_avg()),
            f2(unb.dequeue_hit.steps_avg() / (lg * lg)),
            unb.dequeue_hit.steps_max.to_string(),
            f1(bnd.dequeue_hit.steps_avg()),
            f1(ms.dequeue_hit.steps_avg()),
        ]);
    }
    println!("{table}");
    println!(
        "expected shape: wf-unb grows no faster than log^2(p) (ratio column flattens);\n\
         the ms-queue column grows linearly with contention in adversarial regimes.\n"
    );
}
