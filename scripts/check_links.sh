#!/usr/bin/env bash
# Offline, lychee-style markdown link check over the repo's documentation:
# verifies that every relative link resolves to an existing file and that
# every `#anchor` (internal or cross-file) matches a real heading. External
# URLs (http/https/mailto) are deliberately NOT fetched — CI must stay
# offline-safe — they are only counted.
#
#   scripts/check_links.sh                 # checks the default doc set
#   scripts/check_links.sh FILE.md ...     # checks specific files
set -euo pipefail

cd "$(dirname "$0")/.."

files=("$@")
if [ ${#files[@]} -eq 0 ]; then
  files=(README.md ARCHITECTURE.md DESIGN.md EXPERIMENTS.md MAP.md PAPER.md \
         PAPERS.md ROADMAP.md SNIPPETS.md CHANGES.md vendor/README.md)
fi

python3 - "${files[@]}" <<'PY'
import os
import re
import sys

LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.M)
CODE_FENCE = re.compile(r"```.*?```", re.S)
INLINE_CODE = re.compile(r"`[^`\n]*`")


def anchors_of(path):
    with open(path, encoding="utf-8") as f:
        text = CODE_FENCE.sub("", f.read())
    anchors = set()
    for h in HEADING.findall(text):
        # GitHub anchor algorithm: strip markup/punctuation, lowercase,
        # spaces to hyphens.
        h = re.sub(r"[`*_\[\]()]", "", h).strip().lower()
        h = re.sub(r"[^\w\- ]", "", h)
        anchors.add(h.replace(" ", "-"))
    return anchors


errors = []
checked = external = 0
for md in sys.argv[1:]:
    if not os.path.exists(md):
        errors.append(f"{md}: file listed for checking does not exist")
        continue
    with open(md, encoding="utf-8") as f:
        text = CODE_FENCE.sub("", f.read())
    text = INLINE_CODE.sub("", text)
    base = os.path.dirname(md) or "."
    for target in LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            external += 1
            continue
        checked += 1
        path, _, anchor = target.partition("#")
        dest = md if not path else os.path.normpath(os.path.join(base, path))
        if path and not os.path.exists(dest):
            errors.append(f"{md}: broken relative link -> {target}")
            continue
        if anchor and os.path.splitext(dest)[1] in ("", ".md"):
            if os.path.isfile(dest) and anchor.lower() not in anchors_of(dest):
                errors.append(f"{md}: missing anchor -> {target}")

print(f"checked {checked} internal links ({external} external skipped) "
      f"across {len(sys.argv) - 1} files")
if errors:
    print("\n".join(errors), file=sys.stderr)
    sys.exit(1)
print("all internal links resolve")
PY
