//! Error types of the channel operations.
//!
//! The surface mirrors `std::sync::mpsc` / crossbeam-channel so the facade
//! is a drop-in mental model: send errors return the unsent value(s) to the
//! caller, receive errors distinguish *empty right now* from *disconnected
//! forever*.

use std::fmt;

/// A [`Sender::try_send`](crate::Sender::try_send) failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is capacity-bounded and currently full; the value is
    /// handed back.
    Full(T),
    /// Every [`Receiver`](crate::Receiver) has been dropped, so the value
    /// could never be consumed; it is handed back.
    Disconnected(T),
}

impl<T> TrySendError<T> {
    /// Consumes the error, returning the value that could not be sent.
    pub fn into_inner(self) -> T {
        match self {
            TrySendError::Full(v) | TrySendError::Disconnected(v) => v,
        }
    }

    /// Whether the failure was a full capacity-bounded channel.
    #[must_use]
    pub fn is_full(&self) -> bool {
        matches!(self, TrySendError::Full(_))
    }

    /// Whether the failure was a disconnected channel (no receivers left).
    #[must_use]
    pub fn is_disconnected(&self) -> bool {
        matches!(self, TrySendError::Disconnected(_))
    }
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => write!(f, "sending on a full channel"),
            TrySendError::Disconnected(_) => {
                write!(f, "sending on a channel with no receivers")
            }
        }
    }
}

impl<T: fmt::Debug> std::error::Error for TrySendError<T> {}

/// A [`Sender::send`](crate::Sender::send) or
/// [`Sender::send_all`](crate::Sender::send_all) failed because every
/// [`Receiver`](crate::Receiver) was dropped; the unsent value(s) are handed
/// back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> SendError<T> {
    /// Consumes the error, returning the value(s) that could not be sent.
    pub fn into_inner(self) -> T {
        self.0
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a channel with no receivers")
    }
}

impl<T: fmt::Debug> std::error::Error for SendError<T> {}

/// A [`Receiver::try_recv`](crate::Receiver::try_recv) found no value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel was empty at the dequeue's linearization point, but
    /// senders still exist — a value may arrive later.
    Empty,
    /// The channel is empty **and** every [`Sender`](crate::Sender) has
    /// been dropped: no value can ever arrive. Reported only after a final
    /// drain attempt, so every value sent before the disconnect is
    /// delivered first.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => write!(f, "receiving on an empty channel"),
            TryRecvError::Disconnected => {
                write!(f, "receiving on an empty channel with no senders")
            }
        }
    }
}

impl std::error::Error for TryRecvError {}

/// A [`Receiver::recv`](crate::Receiver::recv) failed: the channel is empty
/// and every [`Sender`](crate::Sender) has been dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty channel with no senders")
    }
}

impl std::error::Error for RecvError {}

/// A [`Receiver::recv_timeout`](crate::Receiver::recv_timeout) failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No value arrived within the timeout; senders still exist.
    Timeout,
    /// The channel is empty and every [`Sender`](crate::Sender) has been
    /// dropped.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => write!(f, "timed out receiving on an empty channel"),
            RecvTimeoutError::Disconnected => {
                write!(f, "receiving on an empty channel with no senders")
            }
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

/// A [`Sender::try_clone`](crate::Sender::try_clone) or
/// [`Receiver::try_clone`](crate::Receiver::try_clone) failed: the
/// channel's endpoint budget for that side is exhausted.
///
/// Every endpoint owns one process id (one leaf) of the backing ordering
/// tree, and the tree is sized at construction
/// ([`Endpoints`](crate::Endpoints)); dropped endpoints do **not** return
/// their id (mirroring the queues' `register`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CloneError {
    /// The per-side endpoint budget that is exhausted.
    pub limit: usize,
}

impl fmt::Display for CloneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "channel endpoint budget exhausted: all {} endpoints of this side have been \
             created (build the channel with a larger `Endpoints` budget)",
            self.limit
        )
    }
}

impl std::error::Error for CloneError {}

/// A [`ChannelBuilder::build`](crate::ChannelBuilder::build) rejected the
/// requested configuration.
///
/// The builder validates the whole configuration up front and reports the
/// first inconsistency here instead of panicking deep inside a backend
/// constructor; the legacy free constructors
/// ([`unbounded`](crate::unbounded), [`bounded`](crate::bounded), …) are
/// thin wrappers that turn these errors back into their documented panics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildError {
    /// A capacity-bounded backend was requested with `capacity == 0` (a
    /// zero-capacity channel could never transfer a value).
    ZeroCapacity,
    /// The ring backend's capacity exceeds the largest ring it can
    /// allocate ([`wfqueue_ring::MAX_CAPACITY`]).
    RingCapacityTooLarge {
        /// The capacity that was requested.
        capacity: usize,
        /// The largest capacity a ring supports.
        max: usize,
    },
    /// A sharded backend was requested with `shards == 0`.
    ZeroShards,
    /// An endpoint budget ([`Endpoints`](crate::Endpoints)) has a zero
    /// side; every channel needs at least one sender and one receiver.
    ZeroEndpoints,
    /// A reclaim period of zero was requested
    /// (`ReclaimPolicy::EveryKRootBlocks(0)`); use `ReclaimPolicy::Off`
    /// to disable truncation instead.
    ZeroReclaimPeriod,
    /// A GC period of zero was requested for the bounded-tree backend;
    /// leave it unset for the paper's default.
    ZeroGcPeriod,
    /// A reclaim policy was set, but the chosen backend does not truncate
    /// (the bounded tree has its own GC; the ring recycles slots in
    /// place).
    ReclaimUnsupported {
        /// The backend that was requested.
        backend: &'static str,
    },
    /// A routing policy was set, but the chosen backend has no shards to
    /// route between.
    RoutingUnsupported {
        /// The backend that was requested.
        backend: &'static str,
    },
    /// A hardware placement was set, but the chosen backend has no
    /// topology-aware routing to consume it.
    PlacementUnsupported {
        /// The backend that was requested.
        backend: &'static str,
    },
    /// A GC period was set, but only the bounded-tree backend has the
    /// paper's §6 garbage collector.
    GcPeriodUnsupported {
        /// The backend that was requested.
        backend: &'static str,
    },
    /// The sharded backend was configured with a routing policy whose
    /// receive scan does not cover every shard (e.g. `PerProducer`), so a
    /// receiver could never observe values sent on the other shards.
    PartialCoverageRouting,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::ZeroCapacity => {
                write!(f, "channel capacity must be at least 1")
            }
            BuildError::RingCapacityTooLarge { capacity, max } => write!(
                f,
                "ring capacity {capacity} exceeds the largest supported ring ({max})"
            ),
            BuildError::ZeroShards => {
                write!(f, "a sharded channel needs at least 1 shard")
            }
            BuildError::ZeroEndpoints => write!(
                f,
                "endpoint budgets must be at least 1 sender and 1 receiver"
            ),
            BuildError::ZeroReclaimPeriod => write!(
                f,
                "reclaim period must be at least 1 root block (use ReclaimPolicy::Off to \
                 disable truncation)"
            ),
            BuildError::ZeroGcPeriod => {
                write!(f, "GC period must be at least 1 (or unset for the default)")
            }
            BuildError::ReclaimUnsupported { backend } => {
                write!(f, "the {backend} backend does not take a reclaim policy")
            }
            BuildError::RoutingUnsupported { backend } => {
                write!(f, "the {backend} backend has no shards to route between")
            }
            BuildError::PlacementUnsupported { backend } => write!(
                f,
                "the {backend} backend has no topology-aware routing to place"
            ),
            BuildError::GcPeriodUnsupported { backend } => write!(
                f,
                "only the bounded-tree backend has a GC period (got {backend})"
            ),
            BuildError::PartialCoverageRouting => write!(
                f,
                "a sharded channel needs a full-coverage routing policy (Rendezvous, Nearest, \
                 Adaptive or RoundRobin): a routing that pins receivers to one shard could \
                 never observe values sent on the others"
            ),
        }
    }
}

impl std::error::Error for BuildError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(TrySendError::Full(1).to_string().contains("full"));
        assert!(TrySendError::Disconnected(1)
            .to_string()
            .contains("no receivers"));
        assert!(SendError(5).to_string().contains("no receivers"));
        assert!(TryRecvError::Empty.to_string().contains("empty"));
        assert!(TryRecvError::Disconnected
            .to_string()
            .contains("no senders"));
        assert!(RecvError.to_string().contains("no senders"));
        assert!(RecvTimeoutError::Timeout.to_string().contains("timed out"));
        assert!(CloneError { limit: 4 }.to_string().contains("4"));
        assert!(BuildError::ZeroCapacity.to_string().contains("at least 1"));
        assert!(BuildError::RingCapacityTooLarge {
            capacity: 1 << 20,
            max: 1 << 15
        }
        .to_string()
        .contains("exceeds"));
        assert!(
            BuildError::PartialCoverageRouting
                .to_string()
                .contains("full-coverage routing"),
            "the sharded() wrapper's documented panic message relies on this substring"
        );
        assert!(BuildError::ReclaimUnsupported { backend: "ring" }
            .to_string()
            .contains("ring"));
    }

    #[test]
    fn try_send_error_accessors() {
        assert_eq!(TrySendError::Full(7).into_inner(), 7);
        assert!(TrySendError::Full(7).is_full());
        assert!(!TrySendError::Full(7).is_disconnected());
        assert!(TrySendError::Disconnected(7).is_disconnected());
        assert_eq!(SendError(vec![1, 2]).into_inner(), vec![1, 2]);
    }
}
