//! Executable replicas of the three trickiest lock-free protocols in this
//! workspace, with *seeded-bug* switches, for exhaustive checking under
//! [`super::explore`].
//!
//! Each scenario is a faithful, minimal port of a real protocol —
//! same atomics, same orderings, same control flow — shrunk to the
//! smallest shape that still contains the race the real code must win:
//!
//! | replica | real code | property checked |
//! |---|---|---|
//! | [`signal_scenario`] | `Signal` in `crates/channel/src/wait.rs` | no lost wakeup (a parked waiter is always woken) |
//! | [`gate_scenario`] | `try_reserve`/`release` in `crates/channel/src/endpoint.rs` | capacity never exceeded; a reserved slot's previous cleanup is visible |
//! | [`hazard_scenario`] | `begin_op`/`truncate_locked` in `crates/core/src/unbounded/reclaim.rs` | the truncator never frees a slot a published hazard still clamps to |
//! | [`scan_scenario`] | `plan_nearest_scan`/`ShardHints` in `crates/shard/src/policy.rs` | an enqueued value is never stranded by a stale `Relaxed` emptiness hint (the fallback pass makes correctness hint-independent) |
//! | [`reroute_scenario`] | `ShardedHandle::try_rehome` in `crates/shard/src/lib.rs` | per-producer FIFO survives a re-home (the emptiness-witness gate) |
//! | [`ring_scenario`] | slot/record handshake of `crates/ring/src/lib.rs` | a stalled helper from an earlier ticket can never fill a recycled slot or deliver into a later operation's result (the phase tags) |
//! | [`steal_park_scenario`] | worker park/steal drain in `crates/executor/src/lib.rs` | a steal racing a park never loses a wakeup, and a successful steal CAS acquires the stolen task's payload |
//!
//! The bug structs ([`SignalBugs`], [`GateBugs`], [`HazardBugs`],
//! [`ScanBugs`], [`RerouteBugs`], [`RingBugs`], [`StealParkBugs`]) switch individual lines
//! of the protocols off or weaken their orderings. With all flags `false` the
//! scenarios must survive *every* schedule (`tests/model.rs` asserts
//! exhaustive passes); with any flag `true` the explorer must find a
//! failing schedule (`tests/checker_power.rs` asserts detection — that is
//! the evidence the checker has teeth, not just that the protocols are
//! green).
//!
//! Replicas, not the real types, are what get checked because the real
//! hot paths intermix metrics recording and epoch pins that are sound by
//! construction but would multiply the schedule space; the replicas
//! preserve exactly the shared-memory dance the correctness arguments in
//! the real modules' docs are about. `tests/checker_power.rs` is the
//! fidelity guard: if a replica drifted into something trivially correct,
//! its seeded mutations would stop being detected and the suite would
//! fail.

use std::sync::Arc;

use crate::atomic::{fence, AtomicU64, AtomicUsize, Ordering};

use super::{spawn, Condvar, Mutex};

/// Hazard value meaning "no operation in flight" (mirrors
/// `reclaim::IDLE`).
const IDLE: u64 = u64::MAX;

// ---------------------------------------------------------------------------
// Signal: the event-count / Dekker wakeup handshake
// ---------------------------------------------------------------------------

/// Seeded bugs for [`signal_scenario`].
#[derive(Clone, Copy, Debug, Default)]
pub struct SignalBugs {
    /// Drop the `SeqCst` fence at the top of `notify` — the fence that
    /// orders the notifier's (release-only) data publication before its
    /// read of `waiters` in the SC total order. Without it the notifier
    /// can take the "nobody is listening" fast path while a waiter,
    /// still able to read the stale data value, goes to sleep: a lost
    /// wakeup, detected as a deadlock.
    pub skip_notify_fence: bool,
    /// Skip the waiter's re-check of its condition between `listen` and
    /// `wait` — the other half of the handshake. A notifier that ran
    /// entirely before the publication then never advances the epoch,
    /// and the waiter sleeps forever.
    pub skip_listen_recheck: bool,
}

/// Replica of `Signal` (`crates/channel/src/wait.rs`): event count +
/// waiter count, with the blocking half on modeled mutex/condvar.
struct SignalProto {
    waiters: AtomicUsize,
    epoch: AtomicU64,
    lock: Mutex<()>,
    cv: Condvar,
}

impl SignalProto {
    fn new() -> Self {
        SignalProto {
            waiters: AtomicUsize::new(0),
            epoch: AtomicU64::new(0),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// `Signal::listen`: publish, then snapshot the epoch.
    fn listen(&self) -> u64 {
        self.waiters.fetch_add(1, Ordering::SeqCst);
        self.epoch.load(Ordering::SeqCst)
    }

    /// `Signal::cancel`: withdraw a publication without sleeping.
    fn cancel(&self) {
        self.waiters.fetch_sub(1, Ordering::SeqCst);
    }

    /// `Signal::wait`: park until the epoch leaves the snapshot.
    fn wait(&self, key: u64) {
        let mut guard = self.lock.lock();
        while self.epoch.load(Ordering::SeqCst) == key {
            guard = self.cv.wait(guard);
        }
        drop(guard);
        self.waiters.fetch_sub(1, Ordering::SeqCst);
    }

    /// `Signal::notify`: fence, fast-path check, then epoch bump +
    /// broadcast under the lock.
    fn notify(&self, bugs: SignalBugs) {
        if !bugs.skip_notify_fence {
            // The replica of wait.rs's load-bearing fence: orders the
            // caller's data store before the `waiters` read below.
            fence(Ordering::SeqCst);
        }
        if self.waiters.load(Ordering::SeqCst) == 0 {
            return;
        }
        {
            let _guard = self.lock.lock();
            self.epoch.fetch_add(1, Ordering::SeqCst);
            self.cv.notify_all();
        }
    }
}

/// The no-lost-wakeup scenario: `1 + usize::from(extra_waiter)` waiters
/// block on a `SignalProto` for a data flag the main thread publishes
/// with `Release` (deliberately *not* `SeqCst`: the real notifier's state
/// update — an enqueue — is not SC either, which is exactly why `notify`
/// needs its fence) followed by `notify`. Every waiter must terminate;
/// a lost wakeup parks a waiter forever and surfaces as a modeled
/// deadlock.
pub fn signal_scenario(bugs: SignalBugs, extra_waiter: bool) -> impl Fn() + Send + Sync + 'static {
    move || {
        let sig = Arc::new(SignalProto::new());
        let data = Arc::new(AtomicU64::new(0));
        let waiters = 1 + usize::from(extra_waiter);
        let mut handles = Vec::new();
        for _ in 0..waiters {
            let sig = Arc::clone(&sig);
            let data = Arc::clone(&data);
            handles.push(spawn(move || {
                loop {
                    if data.load(Ordering::Acquire) == 1 {
                        break;
                    }
                    let key = sig.listen();
                    // The re-check that closes the race against a notify
                    // that ran before the publication above.
                    if !bugs.skip_listen_recheck && data.load(Ordering::Acquire) == 1 {
                        sig.cancel();
                        break;
                    }
                    sig.wait(key);
                }
                assert_eq!(
                    data.load(Ordering::Acquire),
                    1,
                    "waiter woke before the notifier's data store was visible"
                );
            }));
        }
        // The notifier (main virtual thread): publish data, then notify —
        // the exact shape of a channel send.
        data.store(1, Ordering::Release);
        sig.notify(bugs);
        for h in handles {
            h.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Capacity gate: bounded-channel slot reservation
// ---------------------------------------------------------------------------

/// Seeded bugs for [`gate_scenario`].
#[derive(Clone, Copy, Debug, Default)]
pub struct GateBugs {
    /// Weaken the reservation CAS's orderings from `SeqCst` to
    /// `Relaxed`. The CAS still wins slots atomically (capacity is never
    /// exceeded — atomicity is not ordering), but a successful CAS that
    /// is the *first* operation to read a receiver's `fetch_sub` release
    /// no longer acquires that receiver's slot cleanup: the new holder
    /// can observe the previous occupant's stale payload. The window
    /// needs a second producer — for the producer whose fresh
    /// `len.load(SeqCst)` read the release, that load already carried
    /// the edge; the victim is the racer whose load predates the
    /// release and whose CAS lands on it directly.
    pub weak_cas: bool,
}

/// Replica of the bounded channel's in-flight gate
/// (`crates/channel/src/endpoint.rs`): `len` is the reservation counter,
/// `cell` stands for the single payload slot a capacity-1 channel
/// protects (`0` = empty; the fill is one `SeqCst` store, standing in
/// for the real queue enqueue whose own protocol is `SeqCst`-heavy).
struct Gate {
    len: AtomicUsize,
    cell: AtomicU64,
}

impl Gate {
    /// One pass of `try_reserve(1)` against capacity `cap`: the real CAS
    /// loop minus the metrics hooks. Returns `false` when the gate is
    /// full right now (the caller yields and retries, as the blocking
    /// send path does via its `Signal`).
    fn try_reserve_once(&self, cap: usize, bugs: GateBugs) -> bool {
        let order = if bugs.weak_cas {
            Ordering::Relaxed
        } else {
            Ordering::SeqCst
        };
        let mut len = self.len.load(Ordering::SeqCst);
        loop {
            if len + 1 > cap {
                return false;
            }
            match self.len.compare_exchange_weak(len, len + 1, order, order) {
                Ok(prev) => {
                    assert!(prev < cap, "capacity gate exceeded its bound");
                    return true;
                }
                Err(current) => len = current,
            }
        }
    }

    /// A producer round: spin-reserve a slot, assert it arrives clean
    /// (the previous occupant's cleanup must be visible to the new
    /// holder — the happens-before edge the gate's orderings carry),
    /// then fill it with `mark`.
    fn produce(&self, mark: u64, bugs: GateBugs) {
        while !self.try_reserve_once(1, bugs) {
            crate::thread::yield_now();
        }
        assert_eq!(
            self.cell.load(Ordering::Relaxed),
            0,
            "reserved a slot whose previous occupant's cleanup is not visible"
        );
        self.cell.store(mark, Ordering::SeqCst);
    }

    /// A consumer round, non-blocking: if a payload is present, empty the
    /// slot and `release(1)` it back — the real code's
    /// `fetch_sub(SeqCst)`.
    fn try_consume(&self) -> Option<u64> {
        let v = self.cell.load(Ordering::SeqCst);
        if v == 0 {
            return None;
        }
        self.cell.store(0, Ordering::Relaxed);
        self.len.fetch_sub(1, Ordering::SeqCst);
        Some(v)
    }
}

/// The slot-handoff scenario on a capacity-1 gate: a rival producer
/// races one round (mark 11) against the main thread, which produces
/// mark 9 and consumes both payloads in whatever order the gate admits
/// them. Checked in every schedule: the gate never admits past capacity,
/// nobody deadlocks, every reserved slot arrives *clean* (the releasing
/// consumer's cleanup is visible to the winning producer), and exactly
/// `{9, 11}` drain, once each.
///
/// The clean-slot assert is what the reservation CAS's `SeqCst` buys,
/// and the rival is the victim: in the schedule where the rival loads
/// `len == 0`, then the main thread reserves, fills 9, and consumes it
/// (cleanup + release) before the rival's CAS lands, that CAS succeeds
/// against a release it never loaded — only its ordering can carry the
/// cleanup edge. See [`GateBugs::weak_cas`].
pub fn gate_scenario(bugs: GateBugs) -> impl Fn() + Send + Sync + 'static {
    move || {
        let gate = Arc::new(Gate {
            len: AtomicUsize::new(0),
            cell: AtomicU64::new(0),
        });
        let gate_p = Arc::clone(&gate);
        let rival = spawn(move || gate_p.produce(11, bugs));
        let mut produced = false;
        let mut seen = [false; 2];
        let mut consumed = 0;
        while !produced || consumed < 2 {
            if !produced && gate.try_reserve_once(1, bugs) {
                assert_eq!(
                    gate.cell.load(Ordering::Relaxed),
                    0,
                    "reserved a slot whose previous occupant's cleanup is not visible"
                );
                gate.cell.store(9, Ordering::SeqCst);
                produced = true;
                continue;
            }
            if consumed < 2 {
                if let Some(v) = gate.try_consume() {
                    assert!(v == 9 || v == 11, "consumed a torn payload");
                    let idx = usize::from(v == 11);
                    assert!(!seen[idx], "payload {v} consumed twice");
                    seen[idx] = true;
                    consumed += 1;
                    continue;
                }
            }
            crate::thread::yield_now();
        }
        rival.join();
        assert!(seen[0] && seen[1], "both payloads must drain");
    }
}

// ---------------------------------------------------------------------------
// Reclamation hazard: publish-then-recheck vs publish-then-scan
// ---------------------------------------------------------------------------

/// Seeded bugs for [`hazard_scenario`].
#[derive(Clone, Copy, Debug, Default)]
pub struct HazardBugs {
    /// Skip the reader's re-check of the frontier after publishing its
    /// hazard. A truncator that advanced the frontier and scanned hazards
    /// *between the reader's frontier load and its publication* never saw
    /// the hazard — and frees the very slot the reader clamps to.
    pub skip_publish_recheck: bool,
    /// Publish the hazard with `Relaxed` instead of `SeqCst`. The
    /// publication then never enters the SC order the truncator's scan
    /// relies on: the scan can miss a hazard that was (program-order)
    /// published before it.
    pub relaxed_hazard_store: bool,
}

/// The reclamation-frontier scenario, replica of
/// `crates/core/src/unbounded/reclaim.rs`: a reader runs `begin_op`'s
/// publish-then-recheck loop and then touches the slot `frontier - 1` it
/// clamped to, while a truncator advances the frontier to 3 using the
/// real pass's order — *publish the new frontier, then scan hazards,
/// then free below `min(frontier, hazards) - 1`*. The reader asserts its
/// clamp slot was never freed; `freed_below` stands for the unlinked
/// prefix.
pub fn hazard_scenario(bugs: HazardBugs) -> impl Fn() + Send + Sync + 'static {
    move || {
        let frontier = Arc::new(AtomicU64::new(1));
        let hazard = Arc::new(AtomicU64::new(IDLE));
        let freed_below = Arc::new(AtomicU64::new(0));
        let (frontier2, hazard2, freed2) = (
            Arc::clone(&frontier),
            Arc::clone(&hazard),
            Arc::clone(&freed_below),
        );
        let truncator = spawn(move || {
            // `truncate_locked`: two more root blocks proven dead.
            let cur = frontier2.load(Ordering::SeqCst);
            let intent = cur.max(3);
            // Publish intent BEFORE scanning hazards — the line the
            // begin_op recheck argument leans on.
            frontier2.store(intent, Ordering::SeqCst);
            let h = hazard2.load(Ordering::SeqCst);
            let f_final = if h == IDLE { intent } else { intent.min(h) };
            // Free the dead prefix: slots < f_final - 1 (slot f_final - 1
            // itself survives as the boundary summary).
            freed2.store(f_final - 1, Ordering::SeqCst);
        });
        // The reader: `begin_op`'s publish-then-recheck.
        let store_order = if bugs.relaxed_hazard_store {
            Ordering::Relaxed
        } else {
            Ordering::SeqCst
        };
        let published = loop {
            let f = frontier.load(Ordering::SeqCst);
            hazard.store(f, store_order);
            // Recheck: a stable frontier proves any concurrent scan saw
            // our publication.
            if bugs.skip_publish_recheck || frontier.load(Ordering::SeqCst) == f {
                break f;
            }
        };
        // The operation's backwards searches clamp to slot
        // `published - 1` (OpGuard::floor); it must stay allocated while
        // the hazard is up.
        let slot = published - 1;
        assert!(
            slot >= freed_below.load(Ordering::SeqCst),
            "truncator freed the slot a published hazard clamps to"
        );
        // `end_op`: clear the hazard.
        hazard.store(IDLE, Ordering::SeqCst);
        truncator.join();
    }
}

// ---------------------------------------------------------------------------
// Nearest scan: hint-guided probing with an unconditional fallback pass
// ---------------------------------------------------------------------------

/// Seeded bugs for [`scan_scenario`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ScanBugs {
    /// Skip the scan's second, hint-ignoring pass over all shards. The
    /// hints are `Relaxed` and advisory; a consumer that trusts them
    /// exclusively can read a stale `false` for a shard that holds a
    /// value *forever* (coherence permits it — nothing ever synchronises
    /// the hint store to this reader), and spin without ever probing the
    /// shard: a stranded value, detected as a livelock.
    pub skip_fallback: bool,
}

/// Replica of the contention-aware dequeue scan
/// (`plan_nearest_scan` + `ShardHints` in `crates/shard/src/policy.rs`):
/// two shards, modeled as one-value cells (`0` = empty, probe =
/// `swap(0, SeqCst)`, standing in for the shard dequeue whose own
/// protocol is `SeqCst`-heavy), and two `Relaxed` advisory emptiness
/// hints. A producer deposits 7 in the *far* shard and only then raises
/// its hint — exactly `mark_nonempty`'s ordering — while the hint starts
/// lowered, as it is after a previous empty scan. The consumer runs the
/// real scan shape: pass 1 probes shards whose hint reads raised, pass 2
/// probes every shard regardless. In every schedule the consumer must
/// find the value: pass 2's `SeqCst` probe reads the newest cell state
/// no matter how stale the hint it saw was, which is the whole argument
/// for why the hints can stay `Relaxed`.
pub fn scan_scenario(bugs: ScanBugs) -> impl Fn() + Send + Sync + 'static {
    move || {
        const SHARDS: usize = 2;
        let cells: Arc<Vec<AtomicU64>> = Arc::new((0..SHARDS).map(|_| AtomicU64::new(0)).collect());
        let hints: Arc<Vec<AtomicUsize>> =
            Arc::new((0..SHARDS).map(|_| AtomicUsize::new(0)).collect());
        let (cells_p, hints_p) = (Arc::clone(&cells), Arc::clone(&hints));
        let producer = spawn(move || {
            // Enqueue to the far shard, then mark_nonempty: the hint is
            // raised *after* the value is visible, so a raised hint is
            // never a false promise — but a lowered one can be stale.
            cells_p[1].store(7, Ordering::SeqCst);
            hints_p[1].store(1, Ordering::Relaxed);
        });
        // The consumer: plan_nearest_scan's two passes, repeated until
        // the value surfaces (the real caller retries via its waiter).
        let found = loop {
            let mut got = None;
            // Pass 1: nearest-first over shards whose hint is raised.
            for s in 0..SHARDS {
                if hints[s].load(Ordering::Relaxed) != 0 {
                    let v = cells[s].swap(0, Ordering::SeqCst);
                    if v != 0 {
                        got = Some(v);
                        break;
                    }
                }
            }
            // Pass 2: every shard, hints be damned — the coverage
            // guarantee that makes the hints advisory-only.
            if got.is_none() && !bugs.skip_fallback {
                for s in 0..SHARDS {
                    let v = cells[s].swap(0, Ordering::SeqCst);
                    if v != 0 {
                        got = Some(v);
                        break;
                    }
                }
            }
            if let Some(v) = got {
                break v;
            }
            crate::thread::yield_now();
        };
        assert_eq!(found, 7, "scan surfaced a value nobody enqueued");
        producer.join();
    }
}

// ---------------------------------------------------------------------------
// Adaptive re-home: the emptiness-witness gate
// ---------------------------------------------------------------------------

/// Seeded bugs for [`reroute_scenario`].
#[derive(Clone, Copy, Debug, Default)]
pub struct RerouteBugs {
    /// Skip the gate's emptiness witness — re-home immediately instead
    /// of waiting for the old home shard to drain. The producer's later
    /// values then land on the new shard while earlier ones still sit on
    /// the old one, and a consumer whose scan reaches the new shard
    /// first consumes them out of order: the per-producer FIFO
    /// violation `try_rehome`'s gate exists to rule out.
    pub skip_empty_check: bool,
}

/// Replica of `ShardedHandle::try_rehome`
/// (`crates/shard/src/lib.rs`): a producer enqueues value 1 to its home
/// shard A, re-homes to shard B through the gate — *re-home only once
/// the old home is observed empty* (`approx_len() == 0`, here a `SeqCst`
/// load reading 0) — then enqueues value 2 to its new home. A consumer
/// whose nearest-first order is B-then-A drains both values. In every
/// schedule it must see 1 before 2: the producer reading A empty means
/// the consumer's probe of A already happened, so value 2 cannot be
/// consumed first. Shards are one-value cells as in [`scan_scenario`].
pub fn reroute_scenario(bugs: RerouteBugs) -> impl Fn() + Send + Sync + 'static {
    move || {
        let shard_a = Arc::new(AtomicU64::new(0));
        let shard_b = Arc::new(AtomicU64::new(0));
        let (a_p, b_p) = (Arc::clone(&shard_a), Arc::clone(&shard_b));
        let producer = spawn(move || {
            // Enqueue seq 1 on the current home, A.
            a_p.store(1, Ordering::SeqCst);
            // try_rehome(B): the gate demands an emptiness witness for A
            // *after* A's last enqueue. The producer's own store of 1 is
            // coherence-ordered before this load, so reading 0 proves a
            // consumer drained it.
            if !bugs.skip_empty_check {
                while a_p.load(Ordering::SeqCst) != 0 {
                    crate::thread::yield_now();
                }
            }
            // Home is now B; enqueue seq 2 there.
            b_p.store(2, Ordering::SeqCst);
        });
        // The consumer: nearest-first scan order is B-then-A (its own
        // home is B), probing until both values drained.
        let mut order = Vec::new();
        while order.len() < 2 {
            for cell in [&shard_b, &shard_a] {
                let v = cell.swap(0, Ordering::SeqCst);
                if v != 0 {
                    order.push(v);
                }
            }
            if order.len() < 2 {
                crate::thread::yield_now();
            }
        }
        assert_eq!(
            order,
            [1, 2],
            "re-homed producer's values consumed out of order"
        );
        producer.join();
    }
}

// ---------------------------------------------------------------------------
// Ring: the phase-tagged slot/record helping handshake
// ---------------------------------------------------------------------------

/// Seeded bugs for [`ring_scenario`].
#[derive(Clone, Copy, Debug, Default)]
pub struct RingBugs {
    /// Drop the phase tag from the enqueue helper's fill CAS: match "any
    /// empty slot" (`value == 0`) instead of the announced ticket's exact
    /// phase-tagged empty word. A helper that read an announcement, was
    /// validated, and then stalled across a whole slot recycle (fill →
    /// dequeue → free) re-fills the *next* ticket's slot with its stale
    /// value — the next enqueuer sees its slot full, assumes its own fill
    /// landed, and the stale value is delivered in place of the real one.
    pub untagged_slot_cas: bool,
    /// Drop the phase tag from the dequeue result word: initialise the
    /// owner's `result` to a bare `0` and deliver with a bare value
    /// instead of `(phase << …) | value`. A dequeue helper that read the
    /// slot and then stalled past the operation's completion can now CAS
    /// its stale value into the *successor* operation's freshly-reset
    /// result — the successor returns a value from the wrong ticket.
    pub untagged_result: bool,
}

/// Word-level constants of the mini ring (8-bit value, phase above).
const RING_IDLE: u64 = 0;
const RING_ENQ: u64 = 1;
const RING_DEQ: u64 = 2;

/// Packs a slot/result word: `phase << 8 | value`.
fn ring_pack(phase: u64, value: u64) -> u64 {
    (phase << 8) | value
}

/// Replica of the `wfqueue_ring` slot handshake, shrunk to capacity 1 and
/// one announcement record: `slot` cycles `empty(t) = t<<8` →
/// `full(t) = (t+1)<<8 | v` → `empty(t+1) = (t+1)<<8` (capacity 1 makes
/// phase = ticket), `word`/`aux` are the owner's published announcement,
/// and `result` is the phase-guarded completion word dequeue helpers
/// deliver into.
struct MiniRing {
    slot: AtomicU64,
    word: AtomicU64,
    aux: AtomicU64,
    result: AtomicU64,
}

impl MiniRing {
    fn new() -> Self {
        MiniRing {
            slot: AtomicU64::new(ring_pack(0, 0)),
            word: AtomicU64::new(RING_IDLE),
            aux: AtomicU64::new(0),
            result: AtomicU64::new(0),
        }
    }

    /// The owner's enqueue: publish the announcement, then race the
    /// helpers to fill the ticket's slot (`announce_and_fill`).
    fn enqueue(&self, ticket: u64, value: u64) {
        self.aux.store(value, Ordering::SeqCst);
        self.word
            .store((RING_ENQ << 8) | (ticket + 1), Ordering::SeqCst);
        loop {
            let cur = self.slot.load(Ordering::SeqCst);
            if cur >> 8 == ticket + 1 {
                // Filled — by this owner's CAS below or by a helper.
                break;
            }
            if cur == ring_pack(ticket, 0) {
                let _ = self.slot.compare_exchange(
                    cur,
                    ring_pack(ticket + 1, value),
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                );
                continue;
            }
            crate::thread::yield_now();
        }
        self.word.store(RING_IDLE, Ordering::SeqCst);
    }

    /// The initial (undelivered) result word for `ticket` — phase-tagged,
    /// unless [`RingBugs::untagged_result`] strips the tag.
    fn result_init(ticket: u64, bugs: RingBugs) -> u64 {
        if bugs.untagged_result {
            0
        } else {
            ring_pack(ticket, 0)
        }
    }

    /// The owner's dequeue: reset the result, publish the announcement,
    /// then race the helpers to deliver the ticket's value and free the
    /// slot for the next lap.
    fn dequeue(&self, ticket: u64, bugs: RingBugs) -> u64 {
        let init = Self::result_init(ticket, bugs);
        self.result.store(init, Ordering::SeqCst);
        self.word
            .store((RING_DEQ << 8) | (ticket + 1), Ordering::SeqCst);
        let value = loop {
            let res = self.result.load(Ordering::SeqCst);
            if res & 0xFF != 0 {
                break res & 0xFF;
            }
            let cur = self.slot.load(Ordering::SeqCst);
            if cur >> 8 == ticket + 1 && cur & 0xFF != 0 {
                let delivered = if bugs.untagged_result {
                    cur & 0xFF
                } else {
                    ring_pack(ticket, cur & 0xFF)
                };
                let _ = self.result.compare_exchange(
                    init,
                    delivered,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                );
                let _ = self.slot.compare_exchange(
                    cur,
                    ring_pack(ticket + 1, 0),
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                );
                continue;
            }
            crate::thread::yield_now();
        };
        // The real owner's post-delivery re-check: if the delivering
        // helper stalled before freeing the slot, free it here so the
        // next lap cannot wedge.
        let cur = self.slot.load(Ordering::SeqCst);
        if cur >> 8 == ticket + 1 && cur & 0xFF != 0 {
            let _ = self.slot.compare_exchange(
                cur,
                ring_pack(ticket + 1, 0),
                Ordering::SeqCst,
                Ordering::SeqCst,
            );
        }
        self.word.store(RING_IDLE, Ordering::SeqCst);
        value
    }

    /// A helper's fill attempt for an announced enqueue. Correct form:
    /// one CAS whose *expected* word is the ticket's exact phase-tagged
    /// empty state, so a stale helper simply fails. Buggy form: match any
    /// empty slot and trust its current phase.
    fn help_fill(&self, ticket: u64, value: u64, bugs: RingBugs) {
        if bugs.untagged_slot_cas {
            let cur = self.slot.load(Ordering::SeqCst);
            if cur & 0xFF == 0 {
                let _ = self.slot.compare_exchange(
                    cur,
                    ring_pack((cur >> 8) + 1, value),
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                );
            }
        } else {
            let _ = self.slot.compare_exchange(
                ring_pack(ticket, 0),
                ring_pack(ticket + 1, value),
                Ordering::SeqCst,
                Ordering::SeqCst,
            );
        }
    }

    /// A helper's delivery attempt for an announced dequeue: read the
    /// slot, deliver into the result (phase-guarded CAS), then free the
    /// slot with an exact-word CAS.
    fn help_deliver(&self, ticket: u64, bugs: RingBugs) {
        let cur = self.slot.load(Ordering::SeqCst);
        if cur >> 8 == ticket + 1 && cur & 0xFF != 0 {
            let value = cur & 0xFF;
            let (expected, delivered) = if bugs.untagged_result {
                (0, value)
            } else {
                (ring_pack(ticket, 0), ring_pack(ticket, value))
            };
            let _ = self.result.compare_exchange(
                expected,
                delivered,
                Ordering::SeqCst,
                Ordering::SeqCst,
            );
            let _ = self.slot.compare_exchange(
                cur,
                ring_pack(ticket + 1, 0),
                Ordering::SeqCst,
                Ordering::SeqCst,
            );
        }
    }
}

/// The slot-recycle scenario on a capacity-1 mini ring: the main thread
/// runs two full enqueue→dequeue laps (values 7 then 9) through the
/// announcement record, while a helper thread helps whatever
/// announcement it observes — reading `word`, then `aux`, then
/// revalidating `word` (the real helpers' handshake) before its CAS. The
/// explorer can park the helper between that revalidation and its CAS
/// for arbitrarily long, which is exactly the stale-helper window the
/// ring's phase tags exist for. In every schedule both laps must return
/// their own value: with [`RingBugs::untagged_slot_cas`] a lapped
/// enqueue helper re-fills the recycled slot with value 7 during lap 2,
/// The slot-recycle scenario on a capacity-1 mini ring: the main thread
/// runs two full enqueue→dequeue laps (values 7 then 9) through the
/// announcement record, while a helper thread helps whatever
/// announcement it observes — reading `word`, then `aux`, then
/// revalidating `word` (the real helpers' handshake) before its CAS. The
/// explorer can park the helper between that revalidation and its CAS
/// for arbitrarily long, which is exactly the stale-helper window the
/// ring's phase tags exist for. In every schedule both laps must return
/// their own value: with [`RingBugs::untagged_slot_cas`] a lapped
/// enqueue helper re-fills the recycled slot with value 7 during lap 2,
// ---------------------------------------------------------------------------
// Executor steal/park: the drain handshake between stealing and parking
// ---------------------------------------------------------------------------

/// Seeded bugs for [`steal_park_scenario`].
#[derive(Clone, Copy, Debug, Default)]
pub struct StealParkBugs {
    /// Skip the worker's post-`listen` re-check of the run queue and the
    /// drain condition. A stealer that drains the last task and notifies
    /// *between* the worker's empty probe and its `listen` hits the
    /// notify fast path (no waiters yet); the worker then parks with
    /// nothing left to wake it — a lost wakeup, detected as a deadlock.
    pub skip_park_recheck: bool,
    /// Weaken the steal's claim CAS from `SeqCst` to `Relaxed`. The CAS
    /// still claims the task atomically, but a success that reads the
    /// producer's slot publication no longer *acquires* it: the stealer
    /// can observe the slot as claimed while the task's payload store —
    /// program-ordered before the publication on the producer side — is
    /// not yet visible, and runs a stale task.
    pub relaxed_steal_cas: bool,
}

/// Replica of the executor's park/steal drain
/// (`worker_loop`/`find_task`/`run_task` in `crates/executor/src/lib.rs`),
/// shrunk to a one-slot victim ring in its shutdown-drain phase
/// (`sealed` throughout, one admitted task, exit when
/// `completed == spawned == 1`):
///
/// - the **producer** (main virtual thread) publishes the task — payload
///   store (deliberately `Relaxed`: the slot publication is what carries
///   the edge, exactly as the ring hands a `TaskRef` across), then the
///   `SeqCst` slot store, then `notify` (the spawn `commit`);
/// - the **worker** runs the real loop: exit check, pop attempt
///   (`SeqCst` CAS — the ring's own protocol is `SeqCst`-heavy), then
///   `listen` → re-check (queue probe + exit condition; the seeded skip)
///   → `wait`;
/// - the **stealer** makes one claim attempt with the steal CAS (the
///   seeded weakening) and, on success, runs the task and publishes its
///   completion with `notify` — `run_task`'s sealed-drain completion
///   notify, the wakeup the parked worker's exit depends on.
///
/// In every schedule the task must run exactly once with its payload
/// visible, and both threads must terminate.
pub fn steal_park_scenario(bugs: StealParkBugs) -> impl Fn() + Send + Sync + 'static {
    move || {
        let sig = Arc::new(SignalProto::new());
        // The one-slot victim ring: 0 = empty, 1 = task present.
        let slot = Arc::new(AtomicU64::new(0));
        // The task's payload, published before the slot store.
        let payload = Arc::new(AtomicU64::new(0));
        // `completed` counter; the drain condition is `== 1`.
        let completed = Arc::new(AtomicUsize::new(0));

        let (sig_w, slot_w, payload_w, completed_w) = (
            Arc::clone(&sig),
            Arc::clone(&slot),
            Arc::clone(&payload),
            Arc::clone(&completed),
        );
        let worker = spawn(move || loop {
            // `exit_ready`: sealed (always, here) and every admitted task
            // completed.
            if completed_w.load(Ordering::SeqCst) == 1 {
                break;
            }
            // `find_task`: pop the local ring (the worker's own pop keeps
            // the ring's full orderings regardless of the steal seeding).
            if slot_w
                .compare_exchange(1, 0, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                assert_eq!(
                    payload_w.load(Ordering::Relaxed),
                    7,
                    "worker popped a task whose payload publication is not visible"
                );
                completed_w.fetch_add(1, Ordering::SeqCst);
                // `run_task`'s sealed-drain completion notify.
                sig_w.notify(SignalBugs::default());
                continue;
            }
            let key = sig_w.listen();
            // The post-listen re-check: probe the queue again and
            // re-evaluate the exit condition — the two facts a notify
            // published before our `listen` could be about.
            if !bugs.skip_park_recheck
                && (slot_w.load(Ordering::SeqCst) == 1 || completed_w.load(Ordering::SeqCst) == 1)
            {
                sig_w.cancel();
                continue;
            }
            sig_w.wait(key);
        });

        let (sig_s, slot_s, payload_s, completed_s) = (
            Arc::clone(&sig),
            Arc::clone(&slot),
            Arc::clone(&payload),
            Arc::clone(&completed),
        );
        let stealer = spawn(move || {
            // One steal attempt: claim the victim's slot with the steal
            // CAS. Losing the race (empty slot or the worker's pop) is
            // fine — steals are opportunistic.
            let order = if bugs.relaxed_steal_cas {
                Ordering::Relaxed
            } else {
                Ordering::SeqCst
            };
            if slot_s.compare_exchange(1, 0, order, order).is_ok() {
                assert_eq!(
                    payload_s.load(Ordering::Relaxed),
                    7,
                    "steal CAS did not acquire the stolen task's payload publication"
                );
                completed_s.fetch_add(1, Ordering::SeqCst);
                sig_s.notify(SignalBugs::default());
            }
        });

        // The producer (spawn path): payload, then the slot publication,
        // then `commit`'s notify.
        payload.store(7, Ordering::Relaxed);
        slot.store(1, Ordering::SeqCst);
        sig.notify(SignalBugs::default());

        worker.join();
        stealer.join();
        assert_eq!(
            completed.load(Ordering::SeqCst),
            1,
            "the admitted task must run exactly once"
        );
        assert_eq!(
            slot.load(Ordering::SeqCst),
            0,
            "the drained ring must end empty"
        );
    }
}

/// The slot-recycle scenario on a capacity-1 mini ring: the main thread
/// runs two full enqueue→dequeue laps (values 7 then 9) through the
/// announcement record, while a helper thread helps whatever
/// announcement it observes — reading `word`, then `aux`, then
/// revalidating `word` (the real helpers' handshake) before its CAS. The
/// explorer can park the helper between that revalidation and its CAS
/// for arbitrarily long, which is exactly the stale-helper window the
/// ring's phase tags exist for. In every schedule both laps must return
/// their own value: with [`RingBugs::untagged_slot_cas`] a lapped
/// enqueue helper re-fills the recycled slot with value 7 during lap 2,
/// and with [`RingBugs::untagged_result`] a stalled dequeue helper
/// delivers 7 into lap 2's reset result — both surface as lap 2
/// returning 7 instead of 9.
pub fn ring_scenario(bugs: RingBugs) -> impl Fn() + Send + Sync + 'static {
    move || {
        let ring = Arc::new(MiniRing::new());
        let done = Arc::new(AtomicUsize::new(0));
        let (ring_h, done_h) = (Arc::clone(&ring), Arc::clone(&done));
        let helper = spawn(move || {
            while done_h.load(Ordering::SeqCst) == 0 {
                let w = ring_h.word.load(Ordering::SeqCst);
                if w != RING_IDLE {
                    let v = ring_h.aux.load(Ordering::SeqCst);
                    // Revalidate word → aux → word, as the real helpers
                    // do; the stale window is between this check and the
                    // CAS inside the help call.
                    if ring_h.word.load(Ordering::SeqCst) == w {
                        let ticket = (w & 0xFF) - 1;
                        if w >> 8 == RING_ENQ {
                            ring_h.help_fill(ticket, v, bugs);
                        } else {
                            ring_h.help_deliver(ticket, bugs);
                        }
                    }
                }
                crate::thread::yield_now();
            }
        });
        ring.enqueue(0, 7);
        assert_eq!(
            ring.dequeue(0, bugs),
            7,
            "ring dequeue returned a value from the wrong ticket"
        );
        ring.enqueue(1, 9);
        assert_eq!(
            ring.dequeue(1, bugs),
            9,
            "a stale ring helper crossed into a later operation's generation"
        );
        done.store(1, Ordering::SeqCst);
        helper.join();
    }
}
