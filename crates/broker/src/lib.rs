//! A multi-topic publish/subscribe broker over the wait-free channel
//! facade.
//!
//! Where `wfqueue_channel` packages *one* queue of Naderibeni & Ruppert's
//! *"A Wait-free Queue with Polylogarithmic Step Complexity"* (PODC 2023)
//! behind sender/receiver endpoints, this crate composes *many* of them
//! into a service-shaped artifact: a [`Broker`] owning named, typed
//! **topics**, each backed by its own
//! [`Channel::builder`](wfqueue_channel::Channel::builder)-configured
//! queue — the §3 unbounded tree with epoch-based truncation, the §6
//! bounded-space tree behind a capacity gate, the wCQ-style ring, or the
//! sharded frontend ([`TopicConfig::backend`]).
//!
//! * **Fan-in**: any number of [`Publisher`] handles (minted within the
//!   topic's budget) feed one topic concurrently.
//! * **Fan-out**: the topic's [`Subscriber`]s partition its values —
//!   each value is delivered to **exactly one** subscriber (work-sharing,
//!   not broadcast; use one topic per consumer group for broadcast).
//! * **Backpressure**: a topic over [`Backend::BoundedTree`] or
//!   [`Backend::Ring`] bounds its in-flight values; [`Publisher::publish`]
//!   blocks (and [`Publisher::try_publish`] reports `Full`) at the limit.
//!   Backpressure is strictly per-topic: every topic has its own queue and
//!   its own wakeup signals, so a stalled subscriber on one topic cannot
//!   stall any other (hunted adversarially in `tests/broker.rs`).
//! * **Graceful close**: [`Topic::close`] seals a topic without dropping
//!   its backlog — subscribers drain every accepted value and only then
//!   observe `Closed`, publishers get their value handed back. Dropping
//!   subscriber handles never strands published values: the registry keeps
//!   root endpoints alive, and a later-minted subscriber drains the
//!   backlog. The protocol (a seal flag plus an in-flight publish gauge)
//!   is documented in the `topic` module.
//!
//! # Ordering contract
//!
//! Within one topic the ordering is the backing channel's: **per-publisher
//! FIFO always** (one publisher's values are delivered in publish order),
//! and fully linearizable FIFO across publishers on the single-queue
//! backends (`Unbounded`, `BoundedTree`, `Ring`). A `Sharded` topic
//! relaxes cross-publisher order for root-CAS bandwidth. **Across topics
//! there is no ordering whatsoever** — topics are independent queues, and
//! no operation linearizes with respect to another topic's operations.
//! `tests/broker.rs` checks the per-topic contract with the Wing–Gong
//! linearizability checker through the harness broker adapters.
//!
//! # Example
//!
//! ```
//! use wfqueue_broker::{Broker, TopicConfig};
//!
//! let broker = Broker::new();
//! // Topics are typed at creation; `topic` is get-or-create.
//! let jobs = broker
//!     .create_topic::<u32>("jobs", TopicConfig::bounded(64))
//!     .unwrap();
//!
//! let mut publisher = jobs.publisher().unwrap();
//! let subscriber = jobs.subscriber().unwrap();
//!
//! let worker = wfqueue_sync::thread::spawn(move || {
//!     // Parks between values; ends when the topic is closed and drained.
//!     subscriber.into_iter().sum::<u32>()
//! });
//!
//! publisher.publish_all(0..10).unwrap();
//! jobs.close(); // drain-then-close: the worker still gets all 10 values
//! assert_eq!(worker.join().unwrap(), 45);
//! ```

#![deny(missing_docs)]

mod error;
mod topic;

#[cfg(feature = "async")]
pub mod future;

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

pub use error::{
    BrokerError, ConsumeError, ConsumeTimeoutError, PublishError, TryConsumeError, TryPublishError,
};
pub use topic::{Publisher, Subscriber, SubscriberIter, Topic, TopicConfig, TopicStats};
pub use wfqueue_channel::{Backend, MemoryStats, PlacementConfig, ReclaimPolicy, Routing};

use topic::AnyTopic;

/// The topic registry: a named, typed map of independent topics.
///
/// Cheap to clone (an `Arc`): every clone sees the same topics. The
/// registry holds each topic's root endpoint pair, which is what lets a
/// topic outlive all of its handles — see [`Topic`].
#[derive(Clone, Default)]
pub struct Broker {
    inner: Arc<BrokerInner>,
}

#[derive(Default)]
struct BrokerInner {
    topics: Mutex<BTreeMap<String, Arc<dyn AnyTopic>>>,
}

impl Broker {
    /// Creates an empty broker.
    #[must_use]
    pub fn new() -> Broker {
        Broker::default()
    }

    fn topics(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Arc<dyn AnyTopic>>> {
        self.inner
            .topics
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn downcast<T: Clone + Send + Sync + 'static>(
        name: &str,
        entry: &Arc<dyn AnyTopic>,
    ) -> Result<Topic<T>, BrokerError> {
        let actual = entry.value_type();
        Arc::clone(entry)
            .as_any()
            .downcast::<topic::TopicCore<T>>()
            .map(Topic::from_core)
            .map_err(|_| BrokerError::TypeMismatch {
                name: name.to_string(),
                requested: std::any::type_name::<T>(),
                actual,
            })
    }

    /// Creates a new topic with an explicit [`TopicConfig`].
    ///
    /// # Errors
    ///
    /// [`BrokerError::TopicExists`] if the name is taken (by any value
    /// type); [`BrokerError::Config`] if the channel builder rejects the
    /// configuration.
    ///
    /// # Examples
    ///
    /// ```
    /// use wfqueue_broker::{Broker, BrokerError, TopicConfig};
    ///
    /// let broker = Broker::new();
    /// broker
    ///     .create_topic::<u64>("metrics", TopicConfig::ring(256))
    ///     .unwrap();
    /// assert!(matches!(
    ///     broker.create_topic::<u64>("metrics", TopicConfig::default()),
    ///     Err(BrokerError::TopicExists { .. })
    /// ));
    /// ```
    pub fn create_topic<T: Clone + Send + Sync + 'static>(
        &self,
        name: &str,
        config: TopicConfig,
    ) -> Result<Topic<T>, BrokerError> {
        let mut topics = self.topics();
        if topics.contains_key(name) {
            return Err(BrokerError::TopicExists {
                name: name.to_string(),
            });
        }
        let topic = Topic::build(name, config)?;
        topics.insert(name.to_string(), topic.core_as_any_topic());
        Ok(topic)
    }

    /// Returns the named topic, creating it with [`TopicConfig::default`]
    /// if it does not exist yet (get-or-create).
    ///
    /// # Errors
    ///
    /// [`BrokerError::TypeMismatch`] if the topic exists with a different
    /// value type.
    pub fn topic<T: Clone + Send + Sync + 'static>(
        &self,
        name: &str,
    ) -> Result<Topic<T>, BrokerError> {
        let mut topics = self.topics();
        if let Some(entry) = topics.get(name) {
            return Broker::downcast(name, entry);
        }
        let topic = Topic::build(name, TopicConfig::default())?;
        topics.insert(name.to_string(), topic.core_as_any_topic());
        Ok(topic)
    }

    /// Returns the named topic without creating it.
    ///
    /// # Errors
    ///
    /// [`BrokerError::UnknownTopic`] if it does not exist;
    /// [`BrokerError::TypeMismatch`] if it exists with a different value
    /// type.
    pub fn get_topic<T: Clone + Send + Sync + 'static>(
        &self,
        name: &str,
    ) -> Result<Topic<T>, BrokerError> {
        let topics = self.topics();
        let entry = topics.get(name).ok_or_else(|| BrokerError::UnknownTopic {
            name: name.to_string(),
        })?;
        Broker::downcast(name, entry)
    }

    /// Mints a publisher on the named topic, get-or-creating it —
    /// shorthand for `broker.topic(name)?.publisher()`.
    ///
    /// # Errors
    ///
    /// As [`Broker::topic`] and [`Topic::publisher`].
    pub fn publisher<T: Clone + Send + Sync + 'static>(
        &self,
        name: &str,
    ) -> Result<Publisher<T>, BrokerError> {
        self.topic::<T>(name)?.publisher()
    }

    /// Mints a subscriber on the named topic, get-or-creating it —
    /// shorthand for `broker.topic(name)?.subscriber()`.
    ///
    /// # Errors
    ///
    /// As [`Broker::topic`] and [`Topic::subscriber`].
    pub fn subscriber<T: Clone + Send + Sync + 'static>(
        &self,
        name: &str,
    ) -> Result<Subscriber<T>, BrokerError> {
        self.topic::<T>(name)?.subscriber()
    }

    /// Seals the named topic (type-erased [`Topic::close`]): publishers
    /// get their values handed back, subscribers drain then observe
    /// `Closed`. The topic stays in the registry so late subscribers can
    /// still drain the backlog.
    ///
    /// # Errors
    ///
    /// [`BrokerError::UnknownTopic`] if it does not exist.
    pub fn close_topic(&self, name: &str) -> Result<(), BrokerError> {
        let topics = self.topics();
        let entry = topics.get(name).ok_or_else(|| BrokerError::UnknownTopic {
            name: name.to_string(),
        })?;
        entry.close();
        Ok(())
    }

    /// Seals every topic — the broker-wide graceful shutdown. Never
    /// blocks; subscribers drain each topic's backlog afterwards.
    pub fn shutdown(&self) {
        for entry in self.topics().values() {
            entry.close();
        }
    }

    /// The names of every registered topic, sorted.
    #[must_use]
    pub fn topic_names(&self) -> Vec<String> {
        self.topics().keys().cloned().collect()
    }

    /// Per-topic counter snapshots, sorted by topic name.
    #[must_use]
    pub fn stats(&self) -> Vec<TopicStats> {
        self.topics().values().map(|t| t.stats()).collect()
    }

    /// The memory footprint summed over every topic's backend (the E12
    /// introspection counters — see [`MemoryStats`]).
    #[must_use]
    pub fn memory_stats(&self) -> MemoryStats {
        let mut total = MemoryStats::default();
        for entry in self.topics().values() {
            total.accumulate(entry.memory_stats());
        }
        total
    }
}

impl std::fmt::Debug for Broker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Broker")
            .field("topics", &self.topic_names())
            .finish()
    }
}
