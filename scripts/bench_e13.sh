#!/usr/bin/env bash
# Records the E13-channel overhead + wakeup-latency series as
# BENCH_e13.json so the perf trajectory accumulates across PRs. Run from
# the repo root:
#
#   scripts/bench_e13.sh            # writes ./BENCH_e13.json
#   scripts/bench_e13.sh out.json   # writes to a custom path
set -euo pipefail

out="${1:-BENCH_e13.json}"

cargo bench --bench e13_channel -- --json > "$out"
echo "wrote $out:"
head -n 6 "$out"
