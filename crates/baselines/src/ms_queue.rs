//! The Michael–Scott lock-free queue \[MS98\], instrumented.
//!
//! This is the algorithm the paper positions itself against: enqueues and
//! dequeues CAS the shared `tail`/`head` pointers, so under contention a
//! successful CAS can fail all `p − 1` rivals, giving `Ω(p)` amortized steps
//! per operation — the *CAS retry problem*. Every shared load and CAS is
//! counted through [`wfqueue_metrics`] so the contention behaviour can be
//! compared head-to-head with the wait-free queue.

use std::mem::MaybeUninit;
use wfqueue_sync::atomic::Ordering;

use crossbeam_epoch::{self as epoch, Atomic, Owned, Shared};
use crossbeam_utils::CachePadded;
use wfqueue_metrics as metrics;

struct MsNode<T> {
    /// Uninitialised in the sentinel; initialised in every enqueued node.
    /// A value is moved out (at most once) by the dequeue that wins the
    /// head-swinging CAS.
    value: MaybeUninit<T>,
    next: Atomic<MsNode<T>>,
}

/// A lock-free Michael–Scott queue (two-CAS enqueue, one-CAS dequeue).
///
/// Lock-free but not wait-free: an operation can retry its CAS an unbounded
/// number of times under contention.
///
/// # Examples
///
/// ```
/// let q = wfqueue_baselines::MsQueue::new();
/// q.enqueue(1);
/// q.enqueue(2);
/// assert_eq!(q.dequeue(), Some(1));
/// assert_eq!(q.dequeue(), Some(2));
/// assert_eq!(q.dequeue(), None);
/// ```
pub struct MsQueue<T> {
    head: CachePadded<Atomic<MsNode<T>>>,
    tail: CachePadded<Atomic<MsNode<T>>>,
}

// SAFETY: values are owned by the queue between enqueue and dequeue and are
// handed across threads; `T: Send` suffices (no `&T` is ever shared).
unsafe impl<T: Send> Send for MsQueue<T> {}
// SAFETY: all shared mutation is via atomics with epoch-protected
// reclamation.
unsafe impl<T: Send> Sync for MsQueue<T> {}

impl<T> MsQueue<T> {
    /// Creates an empty queue (one sentinel node).
    #[must_use]
    pub fn new() -> Self {
        let sentinel = Owned::new(MsNode {
            value: MaybeUninit::uninit(),
            next: Atomic::null(),
        });
        let guard = epoch::pin();
        let sentinel = sentinel.into_shared(&guard);
        MsQueue {
            head: CachePadded::new(Atomic::from(sentinel)),
            tail: CachePadded::new(Atomic::from(sentinel)),
        }
    }

    /// Appends `value` to the back of the queue.
    pub fn enqueue(&self, value: T) {
        let guard = &epoch::pin();
        let mut node = Owned::new(MsNode {
            value: MaybeUninit::new(value),
            next: Atomic::null(),
        });
        loop {
            metrics::record_shared_load();
            // ORDERING: the baseline reproduces MS98 verbatim under SC —
            // every load/CAS here stays SeqCst so the step-complexity
            // comparison is not confounded by ordering tricks the
            // original algorithm does not describe.
            let tail = self.tail.load(Ordering::SeqCst, guard);
            // SAFETY: `tail` is never null and nodes are reclaimed only
            // after being unlinked, under the epoch guard.
            let tail_ref = unsafe { tail.deref() };
            metrics::record_shared_load();
            // ORDERING: SC per the baseline policy above.
            let next = tail_ref.next.load(Ordering::SeqCst, guard);
            if !next.is_null() {
                // Tail is lagging: help swing it forward, then retry.
                // ORDERING: SC per the baseline policy above.
                let r = self.tail.compare_exchange(
                    tail,
                    next,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                    guard,
                );
                metrics::record_cas(r.is_ok());
                continue;
            }
            // Race window: tail was read above; an adversarial scheduler
            // preempts here so a rival's CAS wins (the CAS retry problem).
            metrics::adversary_yield();
            // ORDERING: SC per the baseline policy above.
            match tail_ref.next.compare_exchange(
                Shared::null(),
                node,
                Ordering::SeqCst,
                Ordering::SeqCst,
                guard,
            ) {
                Ok(new) => {
                    metrics::record_cas(true);
                    // Swing the tail; failure is fine (someone helped).
                    // ORDERING: SC per the baseline policy above.
                    let r = self.tail.compare_exchange(
                        tail,
                        new,
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                        guard,
                    );
                    metrics::record_cas(r.is_ok());
                    return;
                }
                Err(e) => {
                    metrics::record_cas(false);
                    node = e.new;
                }
            }
        }
    }

    /// Removes and returns the front value, or `None` if the queue is empty.
    pub fn dequeue(&self) -> Option<T> {
        let guard = &epoch::pin();
        loop {
            metrics::record_shared_load();
            // ORDERING: SC throughout, same baseline policy as enqueue.
            let head = self.head.load(Ordering::SeqCst, guard);
            // SAFETY: `head` is never null; protected by `guard`.
            let head_ref = unsafe { head.deref() };
            metrics::record_shared_load();
            // ORDERING: SC per the baseline policy.
            let next = head_ref.next.load(Ordering::SeqCst, guard);
            if next.is_null() {
                return None;
            }
            metrics::record_shared_load();
            // ORDERING: SC per the baseline policy.
            let tail = self.tail.load(Ordering::SeqCst, guard);
            if head == tail {
                // Tail lagging behind a non-empty list: help it forward.
                // ORDERING: SC per the baseline policy.
                let r = self.tail.compare_exchange(
                    tail,
                    next,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                    guard,
                );
                metrics::record_cas(r.is_ok());
            }
            // Race window symmetric to enqueue's (see above).
            metrics::adversary_yield();
            // ORDERING: SC per the baseline policy.
            match self
                .head
                .compare_exchange(head, next, Ordering::SeqCst, Ordering::SeqCst, guard)
            {
                Ok(_) => {
                    metrics::record_cas(true);
                    // SAFETY: `next` is now the sentinel; we won the CAS, so
                    // we are the unique thread reading its value out.
                    let value = unsafe { next.deref().value.assume_init_read() };
                    // SAFETY: the old sentinel is unlinked; no new reader can
                    // reach it, existing readers are guard-protected.
                    unsafe { guard.defer_destroy(head) };
                    return Some(value);
                }
                Err(_) => {
                    metrics::record_cas(false);
                }
            }
        }
    }

    /// Whether the queue appears empty at this instant.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        let guard = &epoch::pin();
        // ORDERING: SC per the baseline policy (is_empty is part of the
        // measured surface).
        let head = self.head.load(Ordering::SeqCst, guard);
        // SAFETY: head is never null; guard-protected.
        // ORDERING: SC per the baseline policy.
        let next = unsafe { head.deref() }.next.load(Ordering::SeqCst, guard);
        next.is_null()
    }
}

impl<T> Default for MsQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> std::fmt::Debug for MsQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MsQueue")
            .field("is_empty", &self.is_empty())
            .finish()
    }
}

impl<T> Drop for MsQueue<T> {
    fn drop(&mut self) {
        // SAFETY: exclusive access; walk the list, dropping initialised
        // values (everything except the current sentinel) and freeing nodes.
        unsafe {
            let guard = epoch::unprotected();
            let mut cur = self.head.load(Ordering::Relaxed, guard);
            let mut is_sentinel = true;
            while !cur.is_null() {
                let next = cur.deref().next.load(Ordering::Relaxed, guard);
                let mut owned = cur.into_owned();
                if !is_sentinel {
                    owned.value.assume_init_drop();
                }
                drop(owned);
                is_sentinel = false;
                cur = next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;
    use std::sync::Arc;

    #[test]
    fn fifo_semantics_sequential() {
        let q = MsQueue::new();
        let mut model = VecDeque::new();
        for i in 0..200u32 {
            if i % 3 == 2 {
                assert_eq!(q.dequeue(), model.pop_front());
            } else {
                q.enqueue(i);
                model.push_back(i);
            }
        }
        while let Some(v) = model.pop_front() {
            assert_eq!(q.dequeue(), Some(v));
        }
        assert_eq!(q.dequeue(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn drop_with_remaining_values() {
        static DROPS: wfqueue_sync::atomic::AtomicUsize = wfqueue_sync::atomic::AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        {
            let q = MsQueue::new();
            for _ in 0..10 {
                q.enqueue(D);
            }
            drop(q.dequeue());
        }
        assert_eq!(DROPS.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn concurrent_no_loss_no_dup() {
        let q = Arc::new(MsQueue::new());
        let threads = 8;
        let per_thread = 5_000u64;
        let consumed: Vec<Vec<u64>> = wfqueue_sync::thread::scope(|s| {
            for t in 0..threads as u64 {
                let q = Arc::clone(&q);
                s.spawn(move || {
                    for i in 0..per_thread {
                        q.enqueue((t << 32) | i);
                    }
                });
            }
            let joins: Vec<_> = (0..threads)
                .map(|_| {
                    let q = Arc::clone(&q);
                    s.spawn(move || {
                        let mut got = Vec::new();
                        let mut misses = 0;
                        while got.len() < per_thread as usize && misses < 5_000_000 {
                            match q.dequeue() {
                                Some(v) => {
                                    got.push(v);
                                    misses = 0;
                                }
                                None => misses += 1,
                            }
                        }
                        got
                    })
                })
                .collect();
            joins.into_iter().map(|j| j.join().unwrap()).collect()
        });
        let mut all: Vec<u64> = consumed.iter().flatten().copied().collect();
        assert_eq!(all.len(), threads * per_thread as usize);
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), threads * per_thread as usize, "duplicates");
        // Per-producer FIFO within each consumer.
        for got in &consumed {
            let mut last = vec![None::<u64>; threads];
            for v in got {
                let t = (v >> 32) as usize;
                let i = v & 0xffff_ffff;
                if let Some(prev) = last[t] {
                    assert!(i > prev);
                }
                last[t] = Some(i);
            }
        }
    }

    #[test]
    fn operations_record_steps() {
        let q = MsQueue::new();
        let (_, steps) = metrics::measure(|| {
            q.enqueue(1);
            let _ = q.dequeue();
        });
        assert!(steps.shared_loads > 0);
        assert!(steps.cas_success >= 2);
    }
}
