//! Workspace static analysis, wired up as `cargo lint` (see
//! `.cargo/config.toml`).
//!
//! `cargo lint` walks every first-party Rust source file (the umbrella
//! crate plus `crates/*`; `vendor/` and `target/` are never visited) and
//! enforces the concurrency-hygiene rules the verification layer depends
//! on:
//!
//! 1. **facade**: no direct `std::sync::atomic` / `core::sync::atomic` /
//!    `std::thread` paths outside `crates/sync` — all atomics and thread
//!    spawns go through the `wfqueue_sync` facade, so
//!    `cargo test --features model` really intercepts every shared-memory
//!    access. Without this rule the facade rots silently: one raw import
//!    and the model checker is blind to that access.
//! 2. **safety**: every `unsafe` block/impl carries an adjacent
//!    `// SAFETY:` comment, and every `unsafe fn` documents its contract
//!    (`# Safety` doc section or an adjacent `// SAFETY:`).
//! 3. **ordering**: every `Ordering::SeqCst` *use* outside `crates/sync`
//!    carries an adjacent `// ORDERING:` justification. SeqCst is the
//!    most expensive ordering on every architecture; the ROADMAP's
//!    relaxation work (items 2–4) starts from these justifications.
//!    `crates/sync` itself is exempt: the facade matches on all orderings
//!    and the model's litmus tests/protocol replicas use SeqCst *as the
//!    subject under test*.
//! 4. **allow**: every `#[allow(...)]` / `#![allow(...)]` states a
//!    `reason = "..."` — un-reasoned suppressions are how lint debt
//!    becomes invisible.
//!
//! Comments and string literals are stripped before matching, so prose,
//! doc examples (doctests live inside doc *comments*), and log messages
//! never trip the rules. The lint is a tripwire, not a compiler: it
//! checks literal paths/tokens, which is exactly the level at which the
//! facade contract and comment conventions live.

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let root = match args.get(1).map(String::as_str) {
                Some("--root") => PathBuf::from(args.get(2).expect("--root takes a path")),
                _ => workspace_root(),
            };
            let violations = lint_workspace(&root);
            for v in &violations {
                println!("{v}");
            }
            if violations.is_empty() {
                println!("cargo lint: clean");
                ExitCode::SUCCESS
            } else {
                println!("cargo lint: {} violation(s)", violations.len());
                ExitCode::FAILURE
            }
        }
        _ => {
            eprintln!("usage: cargo lint   (alias for: cargo run -p xtask -- lint [--root DIR])");
            ExitCode::FAILURE
        }
    }
}

/// The workspace root, resolved from this crate's own manifest directory
/// (`crates/xtask` → two levels up) so the binary works from any cwd.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xtask sits two levels below the workspace root")
        .to_path_buf()
}

/// One rule violation: file, 1-based line, rule id, message.
#[derive(Debug)]
struct Violation {
    file: PathBuf,
    line: usize,
    rule: &'static str,
    message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Lints the first-party source roots under `root`.
fn lint_workspace(root: &Path) -> Vec<Violation> {
    let mut files = Vec::new();
    for top in ["src", "tests", "examples", "benches"] {
        collect_rs(&root.join(top), &mut files);
    }
    let crates_dir = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates_dir) {
        for entry in entries.flatten() {
            let p = entry.path();
            if p.is_dir() {
                for sub in ["src", "tests", "examples", "benches"] {
                    collect_rs(&p.join(sub), &mut files);
                }
            }
        }
    }
    files.sort();
    let mut violations = Vec::new();
    for f in &files {
        let Ok(text) = std::fs::read_to_string(f) else {
            continue;
        };
        let rel = f.strip_prefix(root).unwrap_or(f).to_path_buf();
        lint_file(&rel, &text, &mut violations);
    }
    violations
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let p = entry.path();
        if p.is_dir() {
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Is this path inside the facade crate (exempt from the facade and
/// ordering rules)?
fn in_sync_crate(rel: &Path) -> bool {
    rel.starts_with("crates/sync")
}

fn lint_file(rel: &Path, text: &str, out: &mut Vec<Violation>) {
    let original: Vec<&str> = text.lines().collect();
    let stripped_text = strip_comments_and_strings(text);
    let stripped: Vec<&str> = stripped_text.lines().collect();

    check_facade(rel, &stripped, out);
    check_unsafe(rel, &original, &stripped, out);
    check_ordering(rel, &original, &stripped, out);
    check_allow(rel, &original, &stripped, out);
}

// ---------------------------------------------------------------------------
// Rule 1: facade
// ---------------------------------------------------------------------------

fn check_facade(rel: &Path, stripped: &[&str], out: &mut Vec<Violation>) {
    if in_sync_crate(rel) {
        return;
    }
    // Literal paths, checked post-stripping so doc examples and strings
    // are exempt. `concat!` keeps this file from flagging itself.
    let raw_atomic = concat!("std::sync::", "atomic");
    let raw_core_atomic = concat!("core::sync::", "atomic");
    let raw_thread = concat!("std::", "thread");
    for (i, line) in stripped.iter().enumerate() {
        for pat in [raw_atomic, raw_core_atomic, raw_thread] {
            if line.contains(pat) {
                out.push(Violation {
                    file: rel.to_path_buf(),
                    line: i + 1,
                    rule: "facade",
                    message: format!(
                        "raw `{pat}` outside crates/sync — use the `wfqueue_sync` facade \
                         so the model checker intercepts this access"
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 2: safety comments
// ---------------------------------------------------------------------------

/// Lines of context searched above an `unsafe` for its `// SAFETY:`.
const SAFETY_WINDOW: usize = 6;

fn check_unsafe(rel: &Path, original: &[&str], stripped: &[&str], out: &mut Vec<Violation>) {
    for (i, line) in stripped.iter().enumerate() {
        if !has_word(line, "unsafe") {
            continue;
        }
        // `unsafe fn` contracts may live in the doc block instead of an
        // adjacent comment: scan the contiguous doc/attribute block above.
        let is_fn_decl = line.contains("unsafe fn")
            || (line.contains("unsafe") && line.contains("fn ") && !line.contains("unsafe {"));
        let mut ok = false;
        let lo = i.saturating_sub(SAFETY_WINDOW);
        for orig in &original[lo..=i.min(original.len().saturating_sub(1))] {
            if orig.contains("SAFETY:") {
                ok = true;
                break;
            }
        }
        if !ok && is_fn_decl {
            // Walk the doc-comment/attribute block directly above the fn.
            let mut j = i;
            while j > 0 {
                j -= 1;
                let t = original[j].trim_start();
                if t.starts_with("///")
                    || t.starts_with("//!")
                    || t.starts_with("#[")
                    || t.starts_with("//")
                    || t.is_empty()
                {
                    if t.contains("# Safety") {
                        ok = true;
                        break;
                    }
                } else {
                    break;
                }
            }
        }
        if !ok {
            out.push(Violation {
                file: rel.to_path_buf(),
                line: i + 1,
                rule: "safety",
                message: "`unsafe` without an adjacent `// SAFETY:` comment (or `# Safety` \
                          doc section for an `unsafe fn`)"
                    .to_string(),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 3: SeqCst justifications
// ---------------------------------------------------------------------------

/// Lines of context searched above a `SeqCst` for its `// ORDERING:`.
/// Six lines: one comment above a rustfmt-split `compare_exchange(..,
/// SeqCst, SeqCst, ..)` call still covers the failure ordering on the
/// call's last line.
const ORDERING_WINDOW: usize = 6;

fn check_ordering(rel: &Path, original: &[&str], stripped: &[&str], out: &mut Vec<Violation>) {
    if in_sync_crate(rel) {
        return;
    }
    for (i, line) in stripped.iter().enumerate() {
        if !line.contains("SeqCst") {
            continue;
        }
        let lo = i.saturating_sub(ORDERING_WINDOW);
        let ok = original[lo..=i.min(original.len().saturating_sub(1))]
            .iter()
            .any(|l| l.contains("ORDERING:"));
        if !ok {
            out.push(Violation {
                file: rel.to_path_buf(),
                line: i + 1,
                rule: "ordering",
                message: "`SeqCst` without an adjacent `// ORDERING:` justification \
                          (or downgrade the ordering if SC is not required)"
                    .to_string(),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 4: reasoned allows
// ---------------------------------------------------------------------------

fn check_allow(rel: &Path, original: &[&str], stripped: &[&str], out: &mut Vec<Violation>) {
    let mut i = 0;
    while i < stripped.len() {
        let line = stripped[i];
        if let Some(pos) = line.find("[allow(") {
            // Accumulate the attribute across lines until brackets balance.
            let mut depth = 0usize;
            let mut attr = String::new();
            let mut j = i;
            let mut col = pos;
            'outer: while j < stripped.len() {
                for c in stripped[j][col..].chars() {
                    attr.push(c);
                    match c {
                        '[' | '(' => depth += 1,
                        ']' | ')' => {
                            depth = depth.saturating_sub(1);
                            if depth == 0 {
                                break 'outer;
                            }
                        }
                        _ => {}
                    }
                }
                attr.push('\n');
                j += 1;
                col = 0;
            }
            // `reason` lives in a string literal, which stripping blanked
            // out — so check the original text of the same span.
            let has_reason = original[i..=j.min(original.len() - 1)]
                .iter()
                .any(|l| l.contains("reason"));
            if !has_reason {
                out.push(Violation {
                    file: rel.to_path_buf(),
                    line: i + 1,
                    rule: "allow",
                    message: "`#[allow(...)]` without a `reason = \"...\"`".to_string(),
                });
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

fn has_word(line: &str, word: &str) -> bool {
    let bytes = line.as_bytes();
    let mut start = 0;
    while let Some(pos) = line[start..].find(word) {
        let b = start + pos;
        let e = b + word.len();
        let before_ok = b == 0 || !(bytes[b - 1].is_ascii_alphanumeric() || bytes[b - 1] == b'_');
        let after_ok = e >= bytes.len() || !(bytes[e].is_ascii_alphanumeric() || bytes[e] == b'_');
        if before_ok && after_ok {
            return true;
        }
        start = e;
    }
    false
}

/// Replaces comments, string literals, char literals, and raw strings
/// with spaces, preserving line structure, so rule matching never fires
/// on prose or literals (doc comments — and the doctests inside them —
/// are comments and vanish too).
fn strip_comments_and_strings(text: &str) -> String {
    #[derive(PartialEq)]
    enum St {
        Code,
        LineComment,
        BlockComment(usize),
        Str,
        RawStr(usize),
        Char,
    }
    let mut out = String::with_capacity(text.len());
    let mut st = St::Code;
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match st {
            St::Code => match c {
                '/' if next == Some('/') => {
                    st = St::LineComment;
                    out.push(' ');
                }
                '/' if next == Some('*') => {
                    st = St::BlockComment(1);
                    out.push(' ');
                }
                '"' => {
                    st = St::Str;
                    out.push(' ');
                }
                'r' if next == Some('"') || next == Some('#') => {
                    // Possible raw string: count hashes.
                    let mut k = i + 1;
                    let mut hashes = 0;
                    while chars.get(k) == Some(&'#') {
                        hashes += 1;
                        k += 1;
                    }
                    if chars.get(k) == Some(&'"') {
                        st = St::RawStr(hashes);
                        for _ in i..=k {
                            out.push(' ');
                        }
                        i = k;
                    } else {
                        out.push(c);
                    }
                }
                '\'' => {
                    // Char literal vs lifetime: a lifetime has no closing
                    // quote within a couple of chars (`'a`, `'static`).
                    let close =
                        chars.get(i + 2) == Some(&'\'') || (chars.get(i + 1) == Some(&'\\'));
                    if close {
                        st = St::Char;
                        out.push(' ');
                    } else {
                        out.push(c);
                    }
                }
                _ => out.push(c),
            },
            St::LineComment => {
                if c == '\n' {
                    st = St::Code;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
            St::BlockComment(depth) => {
                if c == '/' && next == Some('*') {
                    st = St::BlockComment(depth + 1);
                    out.push_str("  ");
                    i += 1;
                } else if c == '*' && next == Some('/') {
                    st = if depth == 1 {
                        St::Code
                    } else {
                        St::BlockComment(depth - 1)
                    };
                    out.push_str("  ");
                    i += 1;
                } else if c == '\n' {
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
            St::Str => {
                if c == '\\' {
                    out.push(' ');
                    if let Some(n) = next {
                        // An escaped newline (string continuation) must
                        // still emit its newline: line numbers stay true.
                        out.push(if n == '\n' { '\n' } else { ' ' });
                        i += 1;
                    }
                } else if c == '"' {
                    st = St::Code;
                    out.push(' ');
                } else if c == '\n' {
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
            St::RawStr(hashes) => {
                if c == '"' {
                    // Check for closing hashes.
                    let mut k = i + 1;
                    let mut n = 0;
                    while n < hashes && chars.get(k) == Some(&'#') {
                        n += 1;
                        k += 1;
                    }
                    if n == hashes {
                        for _ in i..k {
                            out.push(' ');
                        }
                        i = k - 1;
                        st = St::Code;
                    } else {
                        out.push(' ');
                    }
                } else if c == '\n' {
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
            St::Char => {
                if c == '\\' {
                    out.push(' ');
                    if let Some(n) = next {
                        out.push(if n == '\n' { '\n' } else { ' ' });
                        i += 1;
                    }
                } else if c == '\'' {
                    st = St::Code;
                    out.push(' ');
                } else if c == '\n' {
                    // Unterminated char (was a lifetime after all).
                    out.push('\n');
                    st = St::Code;
                } else {
                    out.push(' ');
                }
            }
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_str(name: &str, text: &str) -> Vec<Violation> {
        let mut v = Vec::new();
        lint_file(Path::new(name), text, &mut v);
        v
    }

    #[test]
    fn stripping_preserves_lines_and_blanks_content() {
        let s = strip_comments_and_strings(
            "let x = \"std::sync::atomic\"; // std::sync::atomic\nlet y = 1;\n",
        );
        assert!(!s.contains("atomic"));
        assert_eq!(s.lines().count(), 2);
        assert!(s.contains("let y = 1;"));
    }

    #[test]
    fn facade_violation_detected_and_sync_crate_exempt() {
        let bad = "use std::sync::atomic::AtomicUsize;\n";
        let v = lint_str("crates/core/src/x.rs", bad);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "facade");
        assert!(lint_str("crates/sync/src/atomic.rs", bad).is_empty());
    }

    #[test]
    fn facade_ignores_comments_and_doctests() {
        let ok = "/// ```\n/// use std::sync::atomic::AtomicUsize;\n/// ```\nfn f() {}\n";
        assert!(lint_str("crates/core/src/x.rs", ok).is_empty());
    }

    #[test]
    fn undocumented_unsafe_detected() {
        let bad = "fn f() {\n    unsafe { g() }\n}\n";
        let v = lint_str("crates/core/src/x.rs", bad);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "safety");
        let ok = "fn f() {\n    // SAFETY: g has no preconditions here.\n    unsafe { g() }\n}\n";
        assert!(lint_str("crates/core/src/x.rs", ok).is_empty());
    }

    #[test]
    fn unsafe_fn_doc_contract_accepted() {
        let ok = "/// Does things.\n///\n/// # Safety\n///\n/// Caller must uphold X.\n\
                  pub unsafe fn f() {}\n";
        assert!(lint_str("crates/core/src/x.rs", ok).is_empty());
    }

    #[test]
    fn unjustified_seqcst_detected_and_sync_crate_exempt() {
        let bad = "fn f(x: &AtomicUsize) { x.load(Ordering::SeqCst); }\n";
        let v = lint_str("crates/core/src/x.rs", bad);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "ordering");
        assert!(lint_str("crates/sync/src/model/mod.rs", bad).is_empty());
        let ok = "// ORDERING: Dekker handshake, see module docs.\n\
                  fn f(x: &AtomicUsize) { x.load(Ordering::SeqCst); }\n";
        assert!(lint_str("crates/core/src/x.rs", ok).is_empty());
    }

    #[test]
    fn unreasoned_allow_detected() {
        let bad = "#[allow(dead_code)]\nfn f() {}\n";
        let v = lint_str("crates/core/src/x.rs", bad);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "allow");
        let ok = "#[allow(dead_code, reason = \"exercised behind a feature gate\")]\nfn f() {}\n";
        assert!(lint_str("crates/core/src/x.rs", ok).is_empty());
        let multiline =
            "#[allow(\n    clippy::cast_possible_truncation,\n    reason = \"u16 bound\"\n)]\nfn f() {}\n";
        assert!(lint_str("crates/core/src/x.rs", multiline).is_empty());
    }

    /// The committed fixture must keep tripping every rule — this is the
    /// "lint fails on a violating input" acceptance check.
    #[test]
    fn violating_fixture_trips_every_rule() {
        let fixture = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/violations.rs");
        let text = std::fs::read_to_string(&fixture).expect("fixture present");
        let v = lint_str("crates/core/src/violations.rs", &text);
        for rule in ["facade", "safety", "ordering", "allow"] {
            assert!(
                v.iter().any(|x| x.rule == rule),
                "fixture no longer trips rule {rule}: {v:?}"
            );
        }
    }

    /// The tree itself must be clean — the same check `cargo lint` runs
    /// in CI, kept here so a plain `cargo test` catches regressions too.
    #[test]
    fn workspace_is_clean() {
        let v = lint_workspace(&workspace_root());
        assert!(
            v.is_empty(),
            "workspace has lint violations:\n{}",
            v.iter().map(|x| format!("  {x}\n")).collect::<String>()
        );
    }
}
