//! The workspace's one doorway to atomics and threads — and, under
//! `feature = "model"`, to an exhaustive interleaving model checker.
//!
//! Every first-party crate in this repository performs its shared-memory
//! accesses through this facade instead of `std::sync::atomic` /
//! `std::thread` (the `cargo lint` xtask enforces it). Two things follow:
//!
//! 1. **In production builds the facade is free.** Every method is an
//!    `#[inline]` newtype passthrough to the corresponding
//!    [`std::sync::atomic`] operation; with the default feature set the
//!    generated code is instruction-for-instruction what the raw types
//!    produce.
//! 2. **In verification builds the facade is a probe.** With
//!    `feature = "model"` enabled, an atomic operation executed *inside a
//!    `model::explore` run* is routed through a modeled memory system
//!    that tracks happens-before with vector clocks, lets weakly-ordered
//!    loads return stale values, and explores thread interleavings
//!    exhaustively under a preemption bound — so a missing fence or a
//!    too-weak `Ordering` becomes a deterministic, replayable test
//!    failure instead of a once-a-month heisenbug. Outside a model run
//!    the same operation stays a real hardware atomic, so the rest of the
//!    test suite is unaffected by the feature.
//!
//! # Which module do I want?
//!
//! * [`atomic`] — `Atomic{Bool,Usize,U64,Ptr}`, [`atomic::Ordering`] and
//!   [`atomic::fence`]: the drop-in `std::sync::atomic` surface.
//! * [`thread`] — `spawn`/`scope`/`yield_now`/… re-exports: the drop-in
//!   `std::thread` surface ([`thread::yield_now`] additionally acts as a
//!   scheduling point inside a model run).
//! * `model` (`feature = "model"`; links resolve only when the module is
//!   compiled in) — the interleaving explorer: `model::explore`,
//!   `model::spawn`, modeled `model::Mutex` / `model::Condvar`, and
//!   `model::protocols`, the small-scale executable replicas of this
//!   repository's trickiest protocols.
//!
//! # Example
//!
//! ```
//! use wfqueue_sync::atomic::{AtomicUsize, Ordering};
//!
//! let x = AtomicUsize::new(0);
//! x.store(7, Ordering::Release);
//! assert_eq!(x.load(Ordering::Acquire), 7);
//! ```
//!
//! And the same type under the model checker (requires `--features model`):
//!
//! ```rust,ignore
//! use std::sync::Arc;
//! use wfqueue_sync::atomic::{AtomicUsize, Ordering};
//! use wfqueue_sync::model;
//!
//! // Explores every interleaving (under the preemption bound) of the
//! // two-thread program below; a lost update would panic with a replayable
//! // schedule trace.
//! let report = model::explore(model::Options::default(), || {
//!     let x = Arc::new(AtomicUsize::new(0));
//!     let x2 = Arc::clone(&x);
//!     let t = model::spawn(move || x2.fetch_add(1, Ordering::SeqCst));
//!     x.fetch_add(1, Ordering::SeqCst);
//!     t.join();
//!     assert_eq!(x.load(Ordering::SeqCst), 2);
//! });
//! assert!(report.complete);
//! ```

#![deny(missing_docs)]

pub mod atomic;
pub mod thread;

#[cfg(feature = "model")]
pub mod model;
