//! Demonstrates the bounded-space construction (§6 of the paper): under a
//! continuous enqueue/dequeue churn, the unbounded queue's ordering tree
//! accumulates one block per operation forever, while the bounded queue's
//! GC phases keep the live-block count flat (Theorem 31 / Lemma 29).
//!
//! Run with: `cargo run --release --example space_bounded_gc`

use wfqueue::bounded::introspect as bounded_introspect;
use wfqueue::unbounded::introspect as unbounded_introspect;

fn main() {
    let rounds = 20_000u64;
    let checkpoints = 8;

    let unbounded: wfqueue::unbounded::Queue<u64> = wfqueue::unbounded::Queue::new(2);
    let bounded: wfqueue::bounded::Queue<u64> = wfqueue::bounded::Queue::with_gc_period(2, 8);
    let mut hu = unbounded.register().unwrap();
    let mut hb = bounded.register().unwrap();

    println!("enqueue+dequeue churn, queue size held at ~16 elements\n");
    println!(
        "{:>10}  {:>18}  {:>16}  {:>14}",
        "operations", "unbounded blocks", "bounded blocks", "bounded depth"
    );

    for i in 0..16 {
        hu.enqueue(i);
        hb.enqueue(i);
    }

    for step in 1..=checkpoints {
        let until = rounds * step / checkpoints;
        let from = rounds * (step - 1) / checkpoints;
        for i in from..until {
            hu.enqueue(i);
            let _ = hu.dequeue();
            hb.enqueue(i);
            let _ = hb.dequeue();
        }
        let ub = unbounded_introspect::total_blocks(&unbounded);
        let bs = bounded_introspect::space_stats(&bounded);
        println!(
            "{:>10}  {:>18}  {:>16}  {:>14}",
            until * 2,
            ub,
            bs.total_blocks,
            bs.max_tree_depth
        );
    }

    let final_unbounded = unbounded_introspect::total_blocks(&unbounded);
    let final_bounded = bounded_introspect::space_stats(&bounded).total_blocks;
    println!(
        "\nafter {} operations: unbounded holds {final_unbounded} blocks, bounded holds \
         {final_bounded} — a {}x reduction (Theorem 31: space depends on p and q, not history)",
        rounds * 2,
        final_unbounded / final_bounded.max(1)
    );

    bounded_introspect::check_invariants(&bounded).expect("bounded invariants");
    unbounded_introspect::check_invariants(&unbounded).expect("unbounded invariants");
}
