//! Experiment E1 — Proposition 19/19′: every wait-free queue operation
//! performs `O(log p)` CAS instructions, versus the `Ω(p)`-CAS behaviour of
//! CAS-retry queues (§1 of the paper).
//!
//! Reported series: mean and worst-case CAS instructions per operation as a
//! function of the process count `p`, for both wait-free variants and the
//! Michael–Scott queue, under a contended 50/50 closed loop.

use wfqueue_bench::exp;
use wfqueue_harness::queue_api::{Ms, WfBounded, WfUnbounded};
use wfqueue_harness::table::{f1, f2, Table};
use wfqueue_harness::workload::{run_workload, RunReport, WorkloadSpec};

fn spec(p: usize) -> WorkloadSpec {
    WorkloadSpec {
        threads: p,
        ops_per_thread: (40_000 / p).max(500),
        enqueue_permille: 500,
        prefill: 256,
        seed: 0xE1,
    }
}

fn cas_cols(r: &RunReport) -> (f64, u64) {
    let total = r.enqueue.cas_total + r.dequeue_hit.cas_total + r.dequeue_null.cas_total;
    let max = r
        .enqueue
        .cas_max
        .max(r.dequeue_hit.cas_max)
        .max(r.dequeue_null.cas_max);
    (total as f64 / r.total_ops() as f64, max)
}

fn main() {
    // The paper's Omega(p) claims are about worst-case schedules; enable the
    // adversarial scheduler so the read-to-CAS races actually occur (see
    // wfqueue_metrics::set_adversary).
    wfqueue_metrics::set_adversary(true);
    println!("(adversarial round-robin scheduler: ON)\n");

    let mut table = Table::new(
        "E1: CAS instructions per operation vs p (Proposition 19: wf = O(log p))",
        &[
            "p",
            "log2(p)",
            "wf-unb avg",
            "wf-unb max",
            "wf-bnd avg",
            "wf-bnd max",
            "ms avg",
            "ms max",
            "ms failed/op",
        ],
    );
    for &p in exp::p_sweep() {
        let s = spec(p);
        let unb = run_workload(&WfUnbounded::new(p), &s);
        assert!(unb.audits_ok(), "E1 audits failed on wf-unbounded at p={p}");
        let bnd = run_workload(&WfBounded::new(p), &s);
        assert!(bnd.audits_ok(), "E1 audits failed on wf-bounded at p={p}");
        let ms = run_workload(&Ms::new(), &s);
        assert!(ms.audits_ok(), "E1 audits failed on ms-queue at p={p}");
        let (ua, um) = cas_cols(&unb);
        let (ba, bm) = cas_cols(&bnd);
        let (ma, mm) = cas_cols(&ms);
        let ms_failed =
            (ms.enqueue.cas_failed + ms.dequeue_hit.cas_failed + ms.dequeue_null.cas_failed) as f64
                / ms.total_ops() as f64;
        table.row_owned(vec![
            p.to_string(),
            f1(exp::log2(p.max(2) as f64)),
            f2(ua),
            um.to_string(),
            f2(ba),
            bm.to_string(),
            f2(ma),
            mm.to_string(),
            f2(ms_failed),
        ]);
    }
    println!("{table}");
    println!(
        "expected shape: wf columns grow ~ with log2(p) and their max stays small and bounded;\n\
         ms-queue's failed-CAS column grows with contention (the CAS retry problem).\n"
    );
}
