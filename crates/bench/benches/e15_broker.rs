//! Experiment E15-broker — the multi-topic broker under a 100k-client
//! bursty load, with latency tails and a live-block memory plateau.
//!
//! The load generator multiplexes **120,000 virtual clients** over a
//! small worker pool (the container is single-core; more OS threads than
//! cores would measure the scheduler, not the broker). Each wave, a
//! deterministic hash activates ~1/8 of the clients; an active client
//! publishes a burst (1, 4 or 12 messages — hash-weighted, averaging
//! ≈ 2.25) to its home topic. Three topics cover the backend spectrum:
//!
//! * `ingest` — §3 unbounded tree, `EveryKRootBlocks(16)` truncation;
//! * `compute` — §6 bounded tree (capacity 4096): publishers feel
//!   backpressure when the drain lags;
//! * `audit` — wCQ-style ring (capacity 4096), fixed storage.
//!
//! Every message carries its publish timestamp; subscriber workers record
//! the enqueue-to-deliver latency of every delivery. At each wave
//! boundary the generator waits for per-topic quiescence
//! (`delivered == published`, the seal/gauge certification) and samples
//! the broker's live-block footprint (the E12 introspection counters).
//! With `feature = "async"` the same bursty profile additionally runs
//! through the `publish_async`/`recv_async` futures.
//!
//! The binary **asserts** the acceptance criteria: every published
//! message is delivered, the live-block footprint plateaus after warmup
//! (no leak across 8 waves of churn), and the latency percentiles are
//! well-formed (p50 ≤ p99 ≤ p999, all nonzero).
//!
//! `--json` prints a machine-readable summary (used by
//! `scripts/bench_e15.sh` to record `BENCH_e15.json`).

use std::sync::Barrier;
use std::time::Instant;

use wfqueue_broker::{Broker, Publisher, ReclaimPolicy, Subscriber, TopicConfig};
use wfqueue_harness::table::Table;

/// Virtual clients simulated by the load generator (the ISSUE's ≥ 100k).
const CLIENTS: u64 = 120_000;
/// Load waves; each ends at a quiescent memory checkpoint.
const WAVES: u64 = 8;
/// Fraction of clients active per wave: 1 in `ACTIVE_ONE_IN`.
const ACTIVE_ONE_IN: u64 = 8;
/// Publisher worker threads multiplexing the virtual clients.
const PUB_WORKERS: u64 = 2;
/// Capacity of the backpressured topics.
const BOUNDED_CAPACITY: usize = 4_096;
/// Truncation period of the unbounded topic.
const PERIOD: usize = 16;
/// Virtual clients for the (smaller) async-facade phase.
#[cfg(feature = "async")]
const ASYNC_CLIENTS: u64 = 30_000;

const TOPICS: [&str; 3] = ["ingest", "compute", "audit"];

/// SplitMix64 finalizer — the deterministic per-(client, wave) hash
/// behind activation and burst sizing.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Burst size of an active client: 12 / 4 / 1 messages, hash-weighted to
/// an average of 2.25 (a few heavy hitters over a long tail).
fn burst(h: u64) -> u64 {
    match (h >> 8) % 16 {
        0 => 12,
        1..=3 => 4,
        _ => 1,
    }
}

fn is_active(client: u64, wave: u64) -> bool {
    mix(client ^ wave.wrapping_mul(0x5851_F42D_4C95_7F2D)).is_multiple_of(ACTIVE_ONE_IN)
}

#[derive(Clone, Copy)]
struct Checkpoint {
    wave: u64,
    live_blocks: usize,
    live_bytes: usize,
}

struct Phase {
    total_msgs: u64,
    elapsed_secs: f64,
    /// Sorted enqueue-to-deliver latencies, nanoseconds.
    latencies_ns: Vec<u64>,
}

impl Phase {
    fn percentile(&self, permille: u64) -> u64 {
        let idx = (self.latencies_ns.len() as u64 - 1) * permille / 1_000;
        self.latencies_ns[idx as usize]
    }

    fn throughput(&self) -> f64 {
        self.total_msgs as f64 / self.elapsed_secs
    }
}

fn broker_with_topics() -> Broker {
    let broker = Broker::new();
    let budget = |config: TopicConfig| {
        config
            .with_publishers(PUB_WORKERS as usize + 2)
            .with_subscribers(4)
    };
    broker
        .create_topic::<u64>(
            "ingest",
            budget(TopicConfig::default().with_reclaim(ReclaimPolicy::EveryKRootBlocks(PERIOD))),
        )
        .unwrap();
    broker
        .create_topic::<u64>("compute", budget(TopicConfig::bounded(BOUNDED_CAPACITY)))
        .unwrap();
    broker
        .create_topic::<u64>("audit", budget(TopicConfig::ring(BOUNDED_CAPACITY)))
        .unwrap();
    broker
}

/// Spins until every topic certifies `delivered == published` — the
/// quiescence the seal/gauge counters make checkable from outside.
fn await_quiescence(broker: &Broker) {
    loop {
        if broker.stats().iter().all(|s| s.delivered == s.published) {
            return;
        }
        wfqueue_sync::thread::yield_now();
    }
}

/// The sync-facade load: blocking `publish`/`recv` under the bursty
/// 120k-client profile, with quiescent memory checkpoints per wave.
fn sync_phase() -> (Phase, Vec<Checkpoint>) {
    let broker = broker_with_topics();
    let epoch = Instant::now();
    // Publishers and the sampler meet at wave boundaries; subscriber
    // workers run free until shutdown.
    let barrier = Barrier::new(PUB_WORKERS as usize + 1);

    let mut checkpoints = Vec::with_capacity(WAVES as usize);
    let start = Instant::now();
    let latencies: Vec<Vec<u64>> = wfqueue_sync::thread::scope(|s| {
        let sub_joins: Vec<_> = TOPICS
            .iter()
            .map(|name| {
                let subscriber: Subscriber<u64> = broker.subscriber(name).unwrap();
                let epoch = &epoch;
                s.spawn(move || {
                    let mut lat = Vec::new();
                    for sent_ns in subscriber {
                        let now = epoch.elapsed().as_nanos() as u64;
                        lat.push(now.saturating_sub(sent_ns).max(1));
                    }
                    lat
                })
            })
            .collect();

        for w in 0..PUB_WORKERS {
            let mut publishers: Vec<Publisher<u64>> = TOPICS
                .iter()
                .map(|name| broker.publisher(name).unwrap())
                .collect();
            let barrier = &barrier;
            let epoch = &epoch;
            s.spawn(move || {
                for wave in 0..WAVES {
                    for client in (w..CLIENTS).step_by(PUB_WORKERS as usize) {
                        if !is_active(client, wave) {
                            continue;
                        }
                        let publisher = &mut publishers[(client % 3) as usize];
                        for _ in 0..burst(mix(client ^ wave)) {
                            let sent_ns = epoch.elapsed().as_nanos() as u64;
                            publisher.publish(sent_ns).unwrap();
                        }
                    }
                    barrier.wait(); // wave published
                    barrier.wait(); // sampler done
                }
            });
        }

        for wave in 0..WAVES {
            barrier.wait(); // every publisher finished this wave
            await_quiescence(&broker);
            let m = broker.memory_stats();
            checkpoints.push(Checkpoint {
                wave: wave + 1,
                live_blocks: m.live_blocks,
                live_bytes: m.live_bytes,
            });
            barrier.wait(); // release the next wave
        }
        // Graceful shutdown: seals every topic; the subscriber iterators
        // end once each backlog (already empty at quiescence) drains.
        broker.shutdown();
        sub_joins
            .into_iter()
            .map(|j| j.join().expect("subscriber worker panicked"))
            .collect()
    });
    let elapsed_secs = start.elapsed().as_secs_f64();

    let stats = broker.stats();
    let published: u64 = stats.iter().map(|s| s.published).sum();
    let delivered: u64 = stats.iter().map(|s| s.delivered).sum();
    assert_eq!(published, delivered, "accepted messages must all deliver");
    let mut latencies_ns: Vec<u64> = latencies.into_iter().flatten().collect();
    assert_eq!(latencies_ns.len() as u64, delivered, "latency per delivery");
    latencies_ns.sort_unstable();
    (
        Phase {
            total_msgs: published,
            elapsed_secs,
            latencies_ns,
        },
        checkpoints,
    )
}

/// The async-facade load: the same bursty profile (fewer clients, one
/// wave) through `publish_async`/`recv_async` futures on the facade's
/// block-on executor.
#[cfg(feature = "async")]
fn async_phase() -> Phase {
    use wfqueue_channel::exec::block_on;

    let broker = broker_with_topics();
    let epoch = Instant::now();
    let start = Instant::now();
    let latencies: Vec<Vec<u64>> = wfqueue_sync::thread::scope(|s| {
        let sub_joins: Vec<_> = TOPICS
            .iter()
            .map(|name| {
                let mut subscriber: Subscriber<u64> = broker.subscriber(name).unwrap();
                let epoch = &epoch;
                s.spawn(move || {
                    let mut lat = Vec::new();
                    while let Ok(sent_ns) = block_on(subscriber.recv_async()) {
                        let now = epoch.elapsed().as_nanos() as u64;
                        lat.push(now.saturating_sub(sent_ns).max(1));
                    }
                    lat
                })
            })
            .collect();

        let mut publishers: Vec<Publisher<u64>> = TOPICS
            .iter()
            .map(|name| broker.publisher(name).unwrap())
            .collect();
        s.spawn(move || {
            for client in 0..ASYNC_CLIENTS {
                if !is_active(client, 0) {
                    continue;
                }
                let publisher = &mut publishers[(client % 3) as usize];
                for _ in 0..burst(mix(client)) {
                    let sent_ns = epoch.elapsed().as_nanos() as u64;
                    block_on(publisher.publish_async(sent_ns)).unwrap();
                }
            }
        })
        .join()
        .expect("async publisher panicked");

        await_quiescence(&broker);
        broker.shutdown();
        sub_joins
            .into_iter()
            .map(|j| j.join().expect("async subscriber panicked"))
            .collect()
    });
    let elapsed_secs = start.elapsed().as_secs_f64();

    let stats = broker.stats();
    let published: u64 = stats.iter().map(|s| s.published).sum();
    let delivered: u64 = stats.iter().map(|s| s.delivered).sum();
    assert_eq!(published, delivered, "async: accepted must all deliver");
    let mut latencies_ns: Vec<u64> = latencies.into_iter().flatten().collect();
    latencies_ns.sort_unstable();
    Phase {
        total_msgs: published,
        elapsed_secs,
        latencies_ns,
    }
}

fn check_phase(label: &str, phase: &Phase) {
    assert!(phase.total_msgs > 0, "{label}: empty load");
    let (p50, p99, p999) = (
        phase.percentile(500),
        phase.percentile(990),
        phase.percentile(999),
    );
    assert!(
        0 < p50 && p50 <= p99 && p99 <= p999,
        "{label}: malformed latency percentiles: {p50} / {p99} / {p999}"
    );
}

fn phase_json(phase: &Phase) -> String {
    format!(
        "{{\"total_msgs\": {}, \"throughput_msgs_per_s\": {:.1}, \
         \"latency_ns\": {{\"p50\": {}, \"p99\": {}, \"p999\": {}}}}}",
        phase.total_msgs,
        phase.throughput(),
        phase.percentile(500),
        phase.percentile(990),
        phase.percentile(999)
    )
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");

    let (sync, checkpoints) = sync_phase();

    // Acceptance: the broker's footprint plateaus across the churn — the
    // E12 ceiling idiom (the bounded/ring topics contribute a constant,
    // the unbounded topic must not leak). 25% headroom over the first
    // quiescent sample: the truncation phase makes checkpoints fluctuate
    // a few percent, while a leak compounds wave over wave.
    let ceiling = (checkpoints[0].live_blocks + checkpoints[0].live_blocks / 4).max(4_096);
    for c in &checkpoints[1..] {
        assert!(
            c.live_blocks <= ceiling,
            "live blocks must plateau: {} > {ceiling} at wave {}",
            c.live_blocks,
            c.wave
        );
    }
    check_phase("sync", &sync);

    #[cfg(feature = "async")]
    let a = async_phase();
    #[cfg(feature = "async")]
    check_phase("async", &a);

    if json {
        // Hand-rolled JSON (no serde in the offline workspace).
        let mut points = String::new();
        for (i, c) in checkpoints.iter().enumerate() {
            if i > 0 {
                points.push_str(", ");
            }
            points.push_str(&format!(
                "{{\"wave\": {}, \"live_blocks\": {}, \"live_bytes\": {}}}",
                c.wave, c.live_blocks, c.live_bytes
            ));
        }
        #[cfg(feature = "async")]
        let async_json = phase_json(&a);
        #[cfg(not(feature = "async"))]
        let async_json = "null".to_string();
        println!(
            "{{\n  \"experiment\": \"e15_broker\",\n  \"clients\": {CLIENTS},\n  \
             \"waves\": {WAVES},\n  \"active_one_in\": {ACTIVE_ONE_IN},\n  \
             \"topics\": [\"ingest/unbounded-every-{PERIOD}\", \
             \"compute/bounded-{BOUNDED_CAPACITY}\", \"audit/ring-{BOUNDED_CAPACITY}\"],\n  \
             \"sync\": {},\n  \"async\": {async_json},\n  \"checkpoints\": [{points}]\n}}",
            phase_json(&sync)
        );
        return;
    }

    let mut table = Table::new(
        &format!(
            "E15-broker: {CLIENTS} bursty clients over {} topics ({WAVES} waves)",
            TOPICS.len()
        ),
        &["facade", "msgs", "msgs/s", "p50 µs", "p99 µs", "p999 µs"],
    );
    let row = |label: &str, p: &Phase| {
        vec![
            label.to_string(),
            p.total_msgs.to_string(),
            format!("{:.0}", p.throughput()),
            format!("{:.1}", p.percentile(500) as f64 / 1_000.0),
            format!("{:.1}", p.percentile(990) as f64 / 1_000.0),
            format!("{:.1}", p.percentile(999) as f64 / 1_000.0),
        ]
    };
    table.row_owned(row("sync", &sync));
    #[cfg(feature = "async")]
    table.row_owned(row("async", &a));
    println!("{table}");

    let mut mem = Table::new(
        "E15-broker: quiescent footprint per wave (sum over topics)",
        &["wave", "live blocks", "live KiB"],
    );
    for c in &checkpoints {
        mem.row_owned(vec![
            c.wave.to_string(),
            c.live_blocks.to_string(),
            (c.live_bytes / 1024).to_string(),
        ]);
    }
    println!("{mem}");
    println!(
        "expected shape: p50 sits at the wave's typical backlog depth (bursts\n\
         queue faster than a single-core drain) and the p99/p999 tails reach\n\
         the wave duration; live blocks plateau at a level set by the burst\n\
         profile and the every-{PERIOD} truncation — growth across waves\n\
         would be a broker-layer leak.\n"
    );
}
