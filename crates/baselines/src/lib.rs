//! Baseline concurrent FIFO queues for the PODC 2023 reproduction.
//!
//! The paper's central claim is a *separation*: all previous CAS-based
//! queues take `Ω(p)` amortized steps per operation in contended executions
//! (the *CAS retry problem*), while the ordering-tree queue needs only
//! polylogarithmic steps. To measure that separation we implement the
//! comparators from scratch, instrumented with the same
//! [`wfqueue_metrics`] counters as the wait-free queue:
//!
//! * [`MsQueue`] — the classic lock-free Michael–Scott queue (the paper's
//!   §1/§2 foil), built on epoch-based reclamation;
//! * [`TwoLockQueue`] — Michael & Scott's two-lock queue (blocking, but a
//!   useful low-overhead reference);
//! * [`MutexQueue`] — a coarse `Mutex<VecDeque>`;
//! * [`SegQueueAdapter`] — `crossbeam`'s industrial segmented queue, as an
//!   ecosystem reference point (not step-instrumented internally; only its
//!   operations are counted).

#![warn(missing_docs)]

mod ms_queue;
mod mutex_queue;
mod seg_queue;
mod two_lock;

pub use ms_queue::MsQueue;
pub use mutex_queue::MutexQueue;
pub use seg_queue::SegQueueAdapter;
pub use two_lock::TwoLockQueue;
