//! Demonstrates the three memory behaviours of the reproduction: under a
//! continuous enqueue/dequeue churn the paper's unbounded queue (§3)
//! accumulates one block per operation forever, the bounded queue's GC
//! phases (§6, Theorem 31 / Lemma 29) keep the live-block count flat, and
//! the unbounded queue with epoch-based tree truncation
//! (`ReclaimPolicy::EveryKRootBlocks`, beyond the paper) plateaus while
//! keeping the §3 hot path.
//!
//! The asserted regression version of this observation lives in
//! `tests/memory_reclaim.rs`; experiment E12 measures it under concurrency.
//!
//! Run with: `cargo run --release --example space_bounded_gc`

use wfqueue::bounded::introspect as bounded_introspect;
use wfqueue::unbounded::introspect as unbounded_introspect;
use wfqueue::unbounded::ReclaimPolicy;

fn main() {
    let rounds = 20_000u64;
    let checkpoints = 8;

    let unbounded: wfqueue::unbounded::Queue<u64> = wfqueue::unbounded::Queue::new(2);
    let reclaiming: wfqueue::unbounded::Queue<u64> =
        wfqueue::unbounded::Queue::with_reclaim(2, ReclaimPolicy::EveryKRootBlocks(64));
    let bounded: wfqueue::bounded::Queue<u64> = wfqueue::bounded::Queue::with_gc_period(2, 8);
    let mut hu = unbounded.register().unwrap();
    let mut hr = reclaiming.register().unwrap();
    let mut hb = bounded.register().unwrap();

    println!("enqueue+dequeue churn, queue size held at ~16 elements\n");
    println!(
        "{:>10}  {:>16}  {:>18}  {:>14}  {:>13}",
        "operations", "unbounded blocks", "+reclamation live", "bounded blocks", "bounded depth"
    );

    for i in 0..16 {
        hu.enqueue(i);
        hr.enqueue(i);
        hb.enqueue(i);
    }

    for step in 1..=checkpoints {
        let until = rounds * step / checkpoints;
        let from = rounds * (step - 1) / checkpoints;
        for i in from..until {
            hu.enqueue(i);
            let _ = hu.dequeue();
            hr.enqueue(i);
            let _ = hr.dequeue();
            hb.enqueue(i);
            let _ = hb.dequeue();
        }
        let ub = unbounded_introspect::total_blocks(&unbounded);
        let rc = unbounded_introspect::total_blocks(&reclaiming);
        let bs = bounded_introspect::space_stats(&bounded);
        println!(
            "{:>10}  {:>16}  {:>18}  {:>14}  {:>13}",
            until * 2,
            ub,
            rc,
            bs.total_blocks,
            bs.max_tree_depth
        );
    }

    let final_unbounded = unbounded_introspect::total_blocks(&unbounded);
    let final_bounded = bounded_introspect::space_stats(&bounded).total_blocks;
    let reclaim_counts = unbounded_introspect::block_counts(&reclaiming);
    println!(
        "\nafter {} operations: unbounded holds {final_unbounded} blocks, bounded holds \
         {final_bounded} — a {}x reduction (Theorem 31: space depends on p and q, not history)",
        rounds * 2,
        final_unbounded / final_bounded.max(1)
    );
    println!(
        "truncation kept {} of {} logical blocks live ({} reclaimed across {} truncations) \
         while the per-op path stayed the §3 algorithm",
        reclaim_counts.live,
        reclaim_counts.logical,
        reclaim_counts.reclaimed,
        reclaiming.reclaim_stats().truncations,
    );

    bounded_introspect::check_invariants(&bounded).expect("bounded invariants");
    unbounded_introspect::check_invariants(&unbounded).expect("unbounded invariants");
    unbounded_introspect::check_invariants(&reclaiming).expect("reclaiming invariants");
}
