#!/usr/bin/env bash
# Records the E11-shard throughput sweep as BENCH_e11.json so the perf
# trajectory accumulates across PRs. The sweep covers all routing
# policies with a distinct perf story: per-producer (capacity win, both
# variants), rendezvous (legacy rotating-ticket sweep), nearest
# (contention-aware hint-guided scan, E11b) and adaptive (nearest +
# re-homing feedback). The binary itself asserts the acceptance
# criteria: per-producer strictly increases S=1..4, and nearest's S=8
# holds >= 95% of its S=4 (the degradation the scan removes).
# Run from the repo root:
#
#   scripts/bench_e11.sh            # writes ./BENCH_e11.json
#   scripts/bench_e11.sh out.json   # writes to a custom path
set -euo pipefail

out="${1:-BENCH_e11.json}"

cargo bench --bench e11_shard -- --json > "$out"
echo "wrote $out:"
head -n 6 "$out"
echo "routings recorded:"
grep -o '"routing": "[a-z-]*"' "$out" | sort -u
