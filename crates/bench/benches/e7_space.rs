//! Experiment E7 — Theorem 31 / Lemma 29: the bounded queue's live block
//! count depends on `q_max` and `p` (plus the `p²log p` GC slack), not on
//! the operation history; the unbounded variant grows linearly forever.
//!
//! Two sweeps: (a) live blocks over time under a fixed-size churn, bounded
//! vs unbounded; (b) steady-state live blocks vs the held queue size
//! `q_max`, with the Lemma 29 prediction column `2q + 4p + 1` per node.

use wfqueue::bounded::introspect as bintro;
use wfqueue::unbounded::introspect as uintro;
use wfqueue_harness::table::{f1, Table};

fn main() {
    // (a) growth over time under churn at q ~ 32, p = 2.
    let mut over_time = Table::new(
        "E7a: live blocks over time (churn at q=32, p=2, G=16)",
        &[
            "operations",
            "bounded blocks",
            "bounded depth",
            "unbounded blocks",
        ],
    );
    let bounded: wfqueue::bounded::Queue<u64> = wfqueue::bounded::Queue::with_gc_period(2, 16);
    let unbounded: wfqueue::unbounded::Queue<u64> = wfqueue::unbounded::Queue::new(2);
    let mut hb = bounded.register().unwrap();
    let mut hu = unbounded.register().unwrap();
    for i in 0..32 {
        hb.enqueue(i);
        hu.enqueue(i);
    }
    let mut ops = 64u64;
    for checkpoint in 1..=6 {
        let until = 4_000u64 * checkpoint;
        while ops < until {
            hb.enqueue(ops);
            let _ = hb.dequeue();
            hu.enqueue(ops);
            let _ = hu.dequeue();
            ops += 2;
        }
        let bs = bintro::space_stats(&bounded);
        over_time.row_owned(vec![
            ops.to_string(),
            bs.total_blocks.to_string(),
            bs.max_tree_depth.to_string(),
            uintro::total_blocks(&unbounded).to_string(),
        ]);
    }
    println!("{over_time}");

    // (b) steady-state space vs held queue size.
    let mut vs_q = Table::new(
        "E7b: steady-state live blocks vs held queue size q (p=2, G=16)",
        &["q", "total blocks", "blocks/node", "lemma29/node: 2q+4p+1"],
    );
    for exp2 in [3u32, 5, 7, 9, 11, 13] {
        let qsize = 1u64 << exp2;
        let q: wfqueue::bounded::Queue<u64> = wfqueue::bounded::Queue::with_gc_period(2, 16);
        let mut h = q.register().unwrap();
        for i in 0..qsize {
            h.enqueue(i);
        }
        // Churn long enough for several GC phases at every node.
        for i in 0..4_000u64 {
            h.enqueue(qsize + i);
            let _ = h.dequeue();
        }
        let stats = bintro::space_stats(&q);
        let nodes = 7; // p=2 -> 2*4-1 tree positions in use
        vs_q.row_owned(vec![
            qsize.to_string(),
            stats.total_blocks.to_string(),
            f1(stats.total_blocks as f64 / nodes as f64),
            (2 * qsize + 4 * 2 + 1).to_string(),
        ]);
    }
    println!("{vs_q}");
    println!(
        "expected shape: E7a bounded column is flat while unbounded grows linearly;\n\
         E7b blocks/node grows linearly in q and stays under the Lemma 29 bound.\n"
    );
}
