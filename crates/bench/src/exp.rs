//! Experiment helpers (scales, environment detection, printing).

/// Thread counts ("p") swept by the scaling experiments. Kept modest so the
/// full suite completes quickly even on small CI machines; pass `--full` to
/// an experiment binary to extend the sweep.
pub const P_SWEEP: &[usize] = &[1, 2, 4, 8, 16, 32];

/// Extended sweep used with `--full`.
pub const P_SWEEP_FULL: &[usize] = &[1, 2, 4, 8, 16, 32, 64, 128];

/// Returns the sweep selected by the command line.
pub fn p_sweep() -> &'static [usize] {
    if std::env::args().any(|a| a == "--full") {
        P_SWEEP_FULL
    } else {
        P_SWEEP
    }
}

/// log2 of a positive number, as f64.
pub fn log2(x: f64) -> f64 {
    x.log2()
}
