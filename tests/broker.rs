//! Cross-crate behaviour of the **broker layer**: per-topic round trips on
//! every backend, fan-in/fan-out partitioning, the seal/gauge
//! drain-then-close protocol, strict per-topic backpressure isolation
//! (hunted adversarially), Wing–Gong linearizability through the harness
//! broker adapters, a multi-topic drop-interleaving proptest (a publish
//! that returned `Ok` is never lost), and a churn/soak memory-plateau
//! check over the E12 introspection counters.

use std::time::Duration;

use proptest::prelude::*;

use wfqueue_broker::{
    Broker, BrokerError, ConsumeTimeoutError, Publisher, ReclaimPolicy, Subscriber, TopicConfig,
    TryConsumeError, TryPublishError,
};
use wfqueue_harness::broker_api::WfBrokerTopic;
use wfqueue_harness::channel_api::ChannelMode;
use wfqueue_harness::lincheck;

fn all_modes() -> Vec<ChannelMode> {
    vec![
        ChannelMode::Try,
        ChannelMode::Blocking,
        #[cfg(feature = "async")]
        ChannelMode::Async,
    ]
}

// ---------------------------------------------------------------------------
// Round trips on every backend + registry semantics
// ---------------------------------------------------------------------------

#[test]
fn round_trip_every_backend() {
    let configs = [
        ("unbounded", TopicConfig::default()),
        ("bounded", TopicConfig::bounded(64)),
        ("ring", TopicConfig::ring(64)),
        ("sharded", TopicConfig::sharded(2)),
    ];
    for (name, config) in configs {
        let broker = Broker::new();
        let topic = broker.create_topic::<u64>(name, config).unwrap();
        let mut publisher = topic.publisher().unwrap();
        let mut subscriber = topic.subscriber().unwrap();
        for i in 0..32 {
            publisher.publish(i).unwrap();
        }
        let mut got: Vec<u64> = (0..32).map(|_| subscriber.recv().unwrap()).collect();
        got.sort_unstable(); // sharded relaxes cross-publisher order
        assert_eq!(got, (0..32).collect::<Vec<_>>(), "{name}");
        assert_eq!(subscriber.try_recv(), Err(TryConsumeError::Empty), "{name}");
        let stats = topic.stats();
        assert_eq!((stats.published, stats.delivered), (32, 32), "{name}");
        assert_eq!(stats.backlog, 0, "{name}");
    }
}

#[test]
fn registry_get_or_create_and_errors() {
    let broker = Broker::new();

    // Get-or-create: same topic both times.
    let a = broker.topic::<u64>("jobs").unwrap();
    let b = broker.topic::<u64>("jobs").unwrap();
    let mut publisher = a.publisher().unwrap();
    let mut subscriber = b.subscriber().unwrap();
    publisher.publish(7).unwrap();
    assert_eq!(subscriber.recv(), Ok(7));

    // Same name, different type: TypeMismatch from every accessor.
    assert!(matches!(
        broker.topic::<String>("jobs"),
        Err(BrokerError::TypeMismatch { .. })
    ));
    assert!(matches!(
        broker.get_topic::<String>("jobs"),
        Err(BrokerError::TypeMismatch { .. })
    ));

    // Explicit create on a taken name fails even with the right type.
    assert!(matches!(
        broker.create_topic::<u64>("jobs", TopicConfig::default()),
        Err(BrokerError::TopicExists { .. })
    ));

    // get_topic never creates.
    assert!(matches!(
        broker.get_topic::<u64>("nope"),
        Err(BrokerError::UnknownTopic { .. })
    ));
    assert!(matches!(
        broker.close_topic("nope"),
        Err(BrokerError::UnknownTopic { .. })
    ));

    // Invalid channel configuration surfaces as Config, not a panic.
    assert!(matches!(
        broker.create_topic::<u64>("bad", TopicConfig::bounded(0)),
        Err(BrokerError::Config { .. })
    ));

    assert_eq!(broker.topic_names(), vec!["jobs".to_string()]);
}

#[test]
fn handle_budgets_are_mint_once() {
    let broker = Broker::new();
    let config = TopicConfig {
        publishers: 2,
        subscribers: 1,
        ..TopicConfig::default()
    };
    let topic = broker.create_topic::<u64>("t", config).unwrap();
    let _p1 = topic.publisher().unwrap();
    let _p2 = topic.publisher().unwrap();
    assert!(matches!(
        topic.publisher(),
        Err(BrokerError::PublishersExhausted { limit: 2, .. })
    ));
    let s1 = topic.subscriber().unwrap();
    // Dropped handles do not return their slot (the backing tree leaf is
    // consumed): the budget counts handles ever minted.
    drop(s1);
    assert!(matches!(
        topic.subscriber(),
        Err(BrokerError::SubscribersExhausted { limit: 1, .. })
    ));
}

// ---------------------------------------------------------------------------
// Fan-in / fan-out partitioning across topics
// ---------------------------------------------------------------------------

/// Values fan in from many publishers and fan out across many subscribers
/// of the same topic — each value delivered exactly once — while a second
/// topic runs the same workload without the two ever mixing.
#[test]
fn fan_in_fan_out_partitions_per_topic() {
    const PER_PUBLISHER: u64 = 2_000;
    let broker = Broker::new();
    for (name, tag) in [("evens", 0u64), ("odds", 1u64)] {
        broker
            .create_topic::<u64>(
                name,
                TopicConfig::default().with_reclaim(ReclaimPolicy::Off),
            )
            .unwrap();
        let publishers: Vec<Publisher<u64>> =
            (0..3).map(|_| broker.publisher(name).unwrap()).collect();
        let subscribers: Vec<Subscriber<u64>> =
            (0..2).map(|_| broker.subscriber(name).unwrap()).collect();
        let consumed: Vec<Vec<u64>> = wfqueue_sync::thread::scope(|s| {
            for (p, mut publisher) in publishers.into_iter().enumerate() {
                s.spawn(move || {
                    for i in 0..PER_PUBLISHER {
                        // Tag every value with its topic's parity so
                        // cross-topic leakage is detectable, not silent.
                        let v = 2 * (p as u64 * PER_PUBLISHER + i) + tag;
                        publisher.publish(v).unwrap();
                    }
                });
            }
            let broker = &broker;
            let joins: Vec<_> = subscribers
                .into_iter()
                .map(|subscriber| s.spawn(move || subscriber.into_iter().collect::<Vec<u64>>()))
                .collect();
            // Publishers have finished once scope joins their threads;
            // close so the subscriber iterators terminate after draining.
            s.spawn(move || {
                while broker.get_topic::<u64>(name).unwrap().stats().published < 3 * PER_PUBLISHER {
                    wfqueue_sync::thread::yield_now();
                }
                broker.close_topic(name).unwrap();
            });
            joins.into_iter().map(|j| j.join().unwrap()).collect()
        });
        let mut all: Vec<u64> = consumed.into_iter().flatten().collect();
        assert!(all.iter().all(|v| v % 2 == tag), "{name}: foreign value");
        all.sort_unstable();
        let expected: Vec<u64> = (0..3 * PER_PUBLISHER).map(|k| 2 * k + tag).collect();
        assert_eq!(all, expected, "{name}: lost or duplicated values");
    }
}

// ---------------------------------------------------------------------------
// Graceful close: seal, drain, then Closed — on every consumption path
// ---------------------------------------------------------------------------

#[test]
fn close_is_drain_then_closed_on_every_path() {
    for path in ["try", "blocking", "timeout"] {
        let broker = Broker::new();
        let topic = broker.topic::<u64>("t").unwrap();
        let mut publisher = topic.publisher().unwrap();
        let mut subscriber = topic.subscriber().unwrap();
        publisher.publish_all([1, 2, 3]).unwrap();
        topic.close();
        assert!(topic.is_closed());

        // Publishing after the seal hands the value back untouched.
        assert_eq!(publisher.try_publish(9), Err(TryPublishError::Closed(9)));
        assert_eq!(publisher.publish(9).unwrap_err().0, 9);

        // The backlog drains in order before Closed appears.
        for want in [1, 2, 3] {
            match path {
                "try" => assert_eq!(subscriber.try_recv(), Ok(want)),
                "blocking" => assert_eq!(subscriber.recv(), Ok(want)),
                _ => assert_eq!(subscriber.recv_timeout(Duration::from_secs(1)), Ok(want)),
            }
        }
        match path {
            "try" => assert_eq!(subscriber.try_recv(), Err(TryConsumeError::Closed)),
            "blocking" => assert!(subscriber.recv().is_err()),
            _ => assert_eq!(
                subscriber.recv_timeout(Duration::from_secs(1)),
                Err(ConsumeTimeoutError::Closed)
            ),
        }
    }
}

/// Dropping every subscriber handle never strands published values: the
/// registry's root endpoints keep the backlog alive, and a later-minted
/// subscriber drains it — even after the topic is closed.
#[test]
fn subscriber_drop_never_strands_published_values() {
    let broker = Broker::new();
    let topic = broker.topic::<u64>("t").unwrap();
    let mut publisher = topic.publisher().unwrap();
    let early = topic.subscriber().unwrap();
    publisher.publish_all(0..100).unwrap();
    drop(early); // backlog of 100 with zero live subscribers
    assert_eq!(topic.stats().subscribers, 0);
    assert_eq!(topic.stats().backlog, 100);

    broker.close_topic("t").unwrap();
    let late = topic.subscriber().unwrap();
    assert_eq!(late.into_iter().sum::<u64>(), (0..100).sum());
}

#[test]
fn shutdown_seals_every_topic() {
    let broker = Broker::new();
    let mut handles = Vec::new();
    for name in ["a", "b", "c"] {
        let mut publisher = broker.publisher::<u64>(name).unwrap();
        publisher.publish(1).unwrap();
        handles.push((broker.get_topic::<u64>(name).unwrap(), publisher));
    }
    broker.shutdown();
    for (topic, publisher) in &mut handles {
        assert!(topic.is_closed());
        assert_eq!(publisher.try_publish(2), Err(TryPublishError::Closed(2)));
        // Backlog still drains after the broker-wide seal.
        let mut subscriber = topic.subscriber().unwrap();
        assert_eq!(subscriber.try_recv(), Ok(1));
        assert_eq!(subscriber.try_recv(), Err(TryConsumeError::Closed));
    }
    assert!(broker.stats().iter().all(|s| s.closed));
}

// ---------------------------------------------------------------------------
// Linearizability (Wing–Gong) through the harness broker adapters
// ---------------------------------------------------------------------------

#[test]
fn broker_histories_linearizable_all_modes() {
    for mode in all_modes() {
        lincheck::check_rounds(|| WfBrokerTopic::unbounded(3, mode), 3, 4, 6)
            .unwrap_or_else(|e| panic!("unbounded {mode:?}: {e}"));
        lincheck::check_rounds(|| WfBrokerTopic::bounded(3, 64, mode), 3, 4, 6)
            .unwrap_or_else(|e| panic!("bounded {mode:?}: {e}"));
        // A one-shard sharded topic is a single linearizable queue.
        lincheck::check_rounds(|| WfBrokerTopic::sharded(1, 3, mode), 3, 4, 6)
            .unwrap_or_else(|e| panic!("sharded {mode:?}: {e}"));
    }
}

#[test]
fn broker_batch_histories_linearizable() {
    for mode in all_modes() {
        let q = WfBrokerTopic::unbounded(2, mode);
        let history = lincheck::record_batch_history(&q, 2, 3, 3, 500, 0xB40);
        lincheck::check_linearizable(&history).unwrap_or_else(|e| panic!("{mode:?}: {e}"));
    }
}

// ---------------------------------------------------------------------------
// Adversarial hunts: lost wakeups and backpressure isolation
// ---------------------------------------------------------------------------

/// The lost-wakeup hunt one layer up: a capacity-1 **topic** forces
/// publisher and subscriber to alternate park/unpark on the topic-level
/// signals for every value. A single lost wakeup on either signal
/// deadlocks the pair (and fails the suite by timeout).
#[test]
fn adversarial_ping_pong_capacity_one_topic() {
    wfqueue_metrics::set_adversary(true);
    const ROUNDS: u64 = 2_000;
    let broker = Broker::new();
    let topic = broker
        .create_topic::<u64>("pp", TopicConfig::bounded(1))
        .unwrap();
    let mut publisher = topic.publisher().unwrap();
    let mut subscriber = topic.subscriber().unwrap();
    let producer = wfqueue_sync::thread::spawn(move || {
        for i in 0..ROUNDS {
            publisher.publish(i).unwrap();
        }
    });
    for i in 0..ROUNDS {
        assert_eq!(subscriber.recv(), Ok(i));
    }
    producer.join().unwrap();
    wfqueue_metrics::set_adversary(false);
}

/// Fault injection: a **stalled subscriber on a bounded topic**
/// backpressures only its own topic. While topic "stuck" (capacity 4) has
/// a parked publisher and a subscriber that consumes nothing, topic
/// "busy" on the same broker completes a full blocking ping-pong
/// unimpeded. Releasing the stalled subscriber then delivers every value
/// — no lost wakeup across the stall.
#[test]
fn adversarial_stalled_subscriber_backpressures_only_its_topic() {
    wfqueue_metrics::set_adversary(true);
    const CAPACITY: usize = 4;
    const STUCK_VALUES: u64 = 64;
    const BUSY_ROUNDS: u64 = 1_000;
    let broker = Broker::new();
    let stuck = broker
        .create_topic::<u64>("stuck", TopicConfig::bounded(CAPACITY))
        .unwrap();
    let busy = broker
        .create_topic::<u64>("busy", TopicConfig::bounded(1))
        .unwrap();

    let mut stuck_pub = stuck.publisher().unwrap();
    let mut stuck_sub = stuck.subscriber().unwrap();
    let mut busy_pub = busy.publisher().unwrap();
    let mut busy_sub = busy.subscriber().unwrap();

    let stalled_producer = wfqueue_sync::thread::spawn(move || {
        for i in 0..STUCK_VALUES {
            stuck_pub.publish(i).unwrap(); // parks at value CAPACITY
        }
    });

    // The stalled topic's publisher must actually hit the wall...
    while stuck.stats().published < CAPACITY as u64 {
        wfqueue_sync::thread::yield_now();
    }
    // ...and with its neighbour fully wedged, this topic still ping-pongs
    // to completion: backpressure is per-topic, signals are per-topic.
    let busy_producer = wfqueue_sync::thread::spawn(move || {
        for i in 0..BUSY_ROUNDS {
            busy_pub.publish(i).unwrap();
        }
    });
    for i in 0..BUSY_ROUNDS {
        assert_eq!(busy_sub.recv(), Ok(i));
    }
    busy_producer.join().unwrap();

    // The stalled topic never ran ahead of its capacity bound while its
    // subscriber consumed nothing.
    let published_while_stalled = stuck.stats().published;
    assert!(
        published_while_stalled <= CAPACITY as u64,
        "bounded topic overran its capacity: {published_while_stalled} > {CAPACITY}"
    );

    // Release the stall: every value arrives, in order, exactly once.
    for i in 0..STUCK_VALUES {
        assert_eq!(stuck_sub.recv(), Ok(i));
    }
    stalled_producer.join().unwrap();
    assert_eq!(stuck.stats().backlog, 0);
    wfqueue_metrics::set_adversary(false);
}

// ---------------------------------------------------------------------------
// Multi-topic drop-interleaving proptest
// ---------------------------------------------------------------------------

/// Applies a generated handle-drop/operation script across **two topics**
/// of one broker: publishers and subscribers are dropped at arbitrary
/// points, values are published (blocking, so `Full` backpressure cannot
/// drop them silently) and consumed concurrently with the drops. At the
/// end each topic is closed and a **freshly minted** subscriber drains it
/// to `Closed` — the registry guarantee that dropping handles never
/// strands accepted values. Per topic, the received multiset must equal
/// the successfully-published multiset.
fn check_broker_drop_script(
    script: &[(u8, u8, u8)],
    configs: [TopicConfig; 2],
) -> Result<(), TestCaseError> {
    let broker = Broker::new();
    let names = ["alpha", "beta"];
    let mut publishers: Vec<Vec<Option<Publisher<u64>>>> = Vec::new();
    let mut subscribers: Vec<Vec<Option<Subscriber<u64>>>> = Vec::new();
    for (name, config) in names.iter().zip(configs) {
        // Budgets sized for the script pool plus the final drain
        // subscriber (handles are mint-once).
        let config = config.with_publishers(3).with_subscribers(4);
        let topic = broker.create_topic::<u64>(name, config).unwrap();
        publishers.push((0..3).map(|_| Some(topic.publisher().unwrap())).collect());
        subscribers.push((0..3).map(|_| Some(topic.subscriber().unwrap())).collect());
    }

    let mut next = 0u64;
    let mut published: [Vec<u64>; 2] = [Vec::new(), Vec::new()];
    let mut received: [Vec<u64>; 2] = [Vec::new(), Vec::new()];
    for &(topic_pick, kind, who) in script {
        let t = topic_pick as usize % 2;
        match kind % 5 {
            // Send-heavy weighting, as in the channel drop proptest.
            0 | 1 => {
                let idx = who as usize % publishers[t].len();
                if let Some(publisher) = publishers[t][idx].as_mut() {
                    // Blocking publish: backpressure waits instead of
                    // dropping, and a concurrent subscriber drain (below)
                    // cannot run, so capacity must cover the script.
                    match publisher.publish(next) {
                        Ok(()) => published[t].push(next),
                        Err(_) => {
                            return Err(TestCaseError::Fail("publish on open topic failed".into()))
                        }
                    }
                    next += 1;
                }
            }
            2 => {
                let idx = who as usize % subscribers[t].len();
                if let Some(subscriber) = subscribers[t][idx].as_mut() {
                    if let Ok(v) = subscriber.try_recv() {
                        received[t].push(v);
                    }
                }
            }
            3 => {
                let idx = who as usize % publishers[t].len();
                publishers[t][idx] = None;
            }
            _ => {
                // Unlike the channel proptest, *every* subscriber may
                // drop: the broker's registry (not a surviving handle) is
                // what keeps the backlog alive.
                let idx = who as usize % subscribers[t].len();
                subscribers[t][idx] = None;
            }
        }
    }

    for (t, name) in names.iter().enumerate() {
        publishers[t].clear();
        subscribers[t].clear();
        broker.close_topic(name).unwrap();
        let mut drain = broker.get_topic::<u64>(name).unwrap().subscriber().unwrap();
        loop {
            match drain.try_recv() {
                Ok(v) => received[t].push(v),
                Err(TryConsumeError::Closed) => break,
                Err(TryConsumeError::Empty) => {
                    return Err(TestCaseError::Fail(
                        "Empty on closed, undrained topic".into(),
                    ))
                }
            }
        }
        published[t].sort_unstable();
        received[t].sort_unstable();
        prop_assert_eq!(&published[t], &received[t], "topic {}", name);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn drop_interleavings_never_lose_published_values_unbounded(
        script in proptest::collection::vec((0u8..2, 0u8..5, 0u8..6), 0..60)
    ) {
        check_broker_drop_script(&script, [
            TopicConfig::default().with_reclaim(ReclaimPolicy::EveryKRootBlocks(8)),
            TopicConfig::default().with_reclaim(ReclaimPolicy::Off),
        ])?;
    }

    #[test]
    fn drop_interleavings_never_lose_published_values_bounded_mix(
        script in proptest::collection::vec((0u8..2, 0u8..5, 0u8..6), 0..60)
    ) {
        // Capacity ≥ script length: the single-threaded script never
        // blocks forever on a full topic.
        check_broker_drop_script(&script, [
            TopicConfig::bounded(64),
            TopicConfig::ring(64),
        ])?;
    }
}

// ---------------------------------------------------------------------------
// Churn plateau (deterministic) + env-gated soak
// ---------------------------------------------------------------------------

/// One churn round: publish `batch` values and drain them back.
fn churn_round(publisher: &mut Publisher<u64>, subscriber: &mut Subscriber<u64>, batch: u64) {
    publisher.publish_all(0..batch).unwrap();
    for _ in 0..batch {
        subscriber.recv().unwrap();
    }
}

/// Live blocks must plateau under sustained publish/drain churn: with
/// epoch-based truncation on, round N's footprint is no larger than the
/// footprint after warmup, for arbitrarily many rounds. This is the
/// broker-level restatement of E12's reclamation result. Handle churn
/// rides along in the deterministic rounds (fresh handles each round,
/// budgets sized to the round count — handles are mint-once); the
/// env-gated soak churns values through persistent handles until its
/// deadline.
#[test]
fn churn_memory_plateaus() {
    const ROUNDS: usize = 40;
    const BATCH: u64 = 256;
    let broker = Broker::new();
    let topic = broker
        .create_topic::<u64>(
            "churn",
            TopicConfig {
                publishers: ROUNDS + 8,
                subscribers: ROUNDS + 8,
                ..TopicConfig::default().with_reclaim(ReclaimPolicy::EveryKRootBlocks(16))
            },
        )
        .unwrap();

    // Warmup establishes the plateau level.
    let mut publisher = topic.publisher().unwrap();
    let mut subscriber = topic.subscriber().unwrap();
    for _ in 0..4 {
        churn_round(&mut publisher, &mut subscriber, BATCH);
    }
    assert!(
        broker.memory_stats().live_blocks > 0,
        "introspection should see live blocks"
    );
    // Constant ceiling after warmup, same idiom as the E12 acceptance
    // check: quiescent footprint may sit anywhere within one truncation
    // period, so the bound has a fixed floor rather than being the exact
    // warmup sample.
    let plateau = broker.memory_stats().live_blocks.max(64);

    let mut peak = 0;
    for _ in 0..ROUNDS {
        // Fresh handles each round: handle churn must not leak blocks
        // either.
        let mut publisher = topic.publisher().unwrap();
        let mut subscriber = topic.subscriber().unwrap();
        churn_round(&mut publisher, &mut subscriber, BATCH);
        peak = peak.max(broker.memory_stats().live_blocks);
    }
    // Identical rounds at quiescence: the footprint must not grow at all
    // beyond the warmup plateau (truncation keeps up between rounds).
    assert!(
        peak <= plateau,
        "live blocks grew under churn: peak {peak} > plateau {plateau}"
    );

    // Soak mode (weekly stress CI): keep churning until the deadline,
    // re-asserting the plateau the whole way.
    if let Ok(secs) = std::env::var("SOAK_SECS") {
        let secs: u64 = secs.parse().expect("SOAK_SECS must be an integer");
        let deadline = std::time::Instant::now() + Duration::from_secs(secs);
        let mut rounds = 0u64;
        while std::time::Instant::now() < deadline {
            churn_round(&mut publisher, &mut subscriber, BATCH);
            let live = broker.memory_stats().live_blocks;
            assert!(
                live <= plateau,
                "soak round {rounds}: live blocks {live} > plateau {plateau}"
            );
            rounds += 1;
        }
        eprintln!("soak: {rounds} churn rounds, live blocks held at {plateau}");
    }
}

// ---------------------------------------------------------------------------
// Async-mode specifics
// ---------------------------------------------------------------------------

#[cfg(feature = "async")]
mod async_mode {
    use super::*;
    use wfqueue_channel::exec::block_on;

    /// Capacity-1 async ping-pong across threads under the adversary:
    /// hunts lost wakeups in the waker-registry path of the topic-level
    /// signals.
    #[test]
    fn async_futures_complete_across_threads_under_adversary() {
        wfqueue_metrics::set_adversary(true);
        const ROUNDS: u64 = 500;
        let broker = Broker::new();
        let topic = broker
            .create_topic::<u64>("pp", TopicConfig::bounded(1))
            .unwrap();
        let mut publisher = topic.publisher().unwrap();
        let mut subscriber = topic.subscriber().unwrap();
        let producer = wfqueue_sync::thread::spawn(move || {
            for i in 0..ROUNDS {
                block_on(publisher.publish_async(i)).unwrap();
            }
        });
        for i in 0..ROUNDS {
            assert_eq!(block_on(subscriber.recv_async()), Ok(i));
        }
        producer.join().unwrap();
        wfqueue_metrics::set_adversary(false);
    }
}
