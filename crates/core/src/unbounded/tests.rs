//! Unit and property tests for the unbounded queue.

use std::collections::VecDeque;

use super::introspect;
use super::{Queue, ReclaimPolicy};

/// Drives a single handle through a script and mirrors it on a `VecDeque`.
fn run_script_single(ops: &[Option<u64>]) {
    let q: Queue<u64> = Queue::new(1);
    let mut h = q.register().unwrap();
    let mut model: VecDeque<u64> = VecDeque::new();
    for op in ops {
        match op {
            Some(v) => {
                h.enqueue(*v);
                model.push_back(*v);
            }
            None => {
                assert_eq!(h.dequeue(), model.pop_front());
            }
        }
    }
    introspect::check_invariants(&q).unwrap();
}

#[test]
fn empty_dequeue_returns_none() {
    let q: Queue<u32> = Queue::new(1);
    let mut h = q.register().unwrap();
    assert_eq!(h.dequeue(), None);
    assert_eq!(h.dequeue(), None);
    introspect::check_invariants(&q).unwrap();
}

#[test]
fn fifo_basic() {
    let q: Queue<u32> = Queue::new(1);
    let mut h = q.register().unwrap();
    h.enqueue(1);
    h.enqueue(2);
    h.enqueue(3);
    assert_eq!(h.dequeue(), Some(1));
    assert_eq!(h.dequeue(), Some(2));
    h.enqueue(4);
    assert_eq!(h.dequeue(), Some(3));
    assert_eq!(h.dequeue(), Some(4));
    assert_eq!(h.dequeue(), None);
}

#[test]
fn interleaved_empty_and_nonempty_phases() {
    run_script_single(&[
        None,
        Some(1),
        None,
        None,
        Some(2),
        Some(3),
        None,
        Some(4),
        None,
        None,
        None,
        Some(5),
        None,
    ]);
}

#[test]
fn long_single_process_script() {
    let mut ops = Vec::new();
    for i in 0..500u64 {
        ops.push(Some(i));
        if i % 3 == 0 {
            ops.push(None);
        }
    }
    for _ in 0..600 {
        ops.push(None);
    }
    run_script_single(&ops);
}

#[test]
fn registration_is_bounded() {
    let q: Queue<u8> = Queue::new(3);
    let h1 = q.register();
    let h2 = q.register();
    let h3 = q.register();
    let h4 = q.register();
    assert!(h1.is_some() && h2.is_some() && h3.is_some());
    assert!(h4.is_none());
    assert_eq!(q.num_processes(), 3);
}

#[test]
fn exhausted_registration_does_not_inflate_counter() {
    // Regression: `register` used to `fetch_add` unconditionally, so the
    // Debug `registered` field kept climbing after exhaustion (and the
    // counter could theoretically wrap back to pid 0).
    let q: Queue<u8> = Queue::new(2);
    let _handles = q.handles();
    for _ in 0..50 {
        assert!(q.register().is_none());
    }
    assert!(
        format!("{q:?}").contains("registered: 2"),
        "counter over-reported: {q:?}"
    );
}

#[test]
fn registration_is_race_free_under_contention() {
    // Exactly `cap` of the competing threads may win a handle, with
    // distinct pids, no matter how many race.
    let q: Queue<u8> = Queue::new(4);
    let won: Vec<usize> = wfqueue_sync::thread::scope(|s| {
        let joins: Vec<_> = (0..16)
            .map(|_| s.spawn(|| q.register().map(|h| h.process_id())))
            .collect();
        joins
            .into_iter()
            .filter_map(|j| j.join().unwrap())
            .collect()
    });
    let mut pids = won;
    pids.sort_unstable();
    assert_eq!(pids, vec![0, 1, 2, 3]);
}

#[test]
fn handles_returns_all_remaining() {
    let q: Queue<u8> = Queue::new(4);
    let _first = q.register().unwrap();
    let rest = q.handles();
    assert_eq!(rest.len(), 3);
    let pids: Vec<_> = rest.iter().map(|h| h.process_id()).collect();
    assert_eq!(pids, vec![1, 2, 3]);
}

#[test]
fn round_robin_handles_single_thread() {
    // Sequential use of several handles must still be a FIFO queue (program
    // order is a valid linearization of non-overlapping operations).
    let q: Queue<u64> = Queue::new(4);
    let mut handles = q.handles();
    let mut model: VecDeque<u64> = VecDeque::new();
    for i in 0..400u64 {
        let h = &mut handles[(i % 4) as usize];
        if i % 5 == 3 || i % 11 == 7 {
            assert_eq!(h.dequeue(), model.pop_front(), "op {i}");
        } else {
            h.enqueue(i);
            model.push_back(i);
        }
    }
    // Drain through yet another rotation of handles.
    let mut i = 0;
    while let Some(expect) = model.pop_front() {
        let h = &mut handles[i % 4];
        assert_eq!(h.dequeue(), Some(expect));
        i += 1;
    }
    assert_eq!(handles[0].dequeue(), None);
    introspect::check_invariants(&q).unwrap();
}

#[test]
fn values_can_be_clone_only_types() {
    let q: Queue<String> = Queue::new(1);
    let mut h = q.register().unwrap();
    h.enqueue("hello".to_owned());
    h.enqueue("world".to_owned());
    assert_eq!(h.dequeue().as_deref(), Some("hello"));
    assert_eq!(h.dequeue().as_deref(), Some("world"));
}

#[test]
fn linearization_matches_sequential_program_order() {
    let q: Queue<u64> = Queue::new(2);
    let mut handles = q.handles();
    let mut expected_ops = Vec::new();
    let mut actual_responses = Vec::new();
    for i in 0..120u64 {
        let h = &mut handles[(i % 2) as usize];
        if i % 3 == 2 {
            actual_responses.push(h.dequeue());
            expected_ops.push(introspect::LinOp::Dequeue);
        } else {
            h.enqueue(i);
            expected_ops.push(introspect::LinOp::Enqueue(i));
        }
    }
    // In a sequential execution the linearization must equal program order.
    let lin = introspect::linearization(&q);
    assert_eq!(lin, expected_ops);
    // And replaying it yields exactly the observed responses.
    let (responses, _) = introspect::replay(&lin);
    assert_eq!(responses, actual_responses);
    introspect::check_invariants(&q).unwrap();
}

#[test]
fn concurrent_no_loss_no_duplication() {
    let producers = 4usize;
    let consumers = 4usize;
    let per_producer = 2_000u64;
    let q: Queue<u64> = Queue::new(producers + consumers);
    let mut handles = q.handles();
    let consumed: Vec<Vec<u64>> = wfqueue_sync::thread::scope(|s| {
        let mut producer_handles = Vec::new();
        for pid in 0..producers {
            let mut h = handles.remove(0);
            producer_handles.push(s.spawn(move || {
                for i in 0..per_producer {
                    h.enqueue(((pid as u64) << 32) | i);
                }
            }));
        }
        let consumer_joins: Vec<_> = (0..consumers)
            .map(|_| {
                let mut h = handles.remove(0);
                s.spawn(move || {
                    let mut got = Vec::new();
                    let target = (producers as u64 * per_producer) / consumers as u64;
                    let mut misses = 0u32;
                    while (got.len() as u64) < target && misses < 1_000_000 {
                        match h.dequeue() {
                            Some(v) => {
                                got.push(v);
                                misses = 0;
                            }
                            None => misses += 1,
                        }
                    }
                    got
                })
            })
            .collect();
        for j in producer_handles {
            j.join().unwrap();
        }
        consumer_joins
            .into_iter()
            .map(|j| j.join().unwrap())
            .collect()
    });

    let mut all: Vec<u64> = consumed.iter().flatten().copied().collect();
    // Per-producer FIFO: each consumer sees each producer's values in order.
    for got in &consumed {
        let mut last = vec![None::<u64>; producers];
        for v in got {
            let pid = (v >> 32) as usize;
            let seq = v & 0xffff_ffff;
            if let Some(prev) = last[pid] {
                assert!(seq > prev, "per-producer order violated");
            }
            last[pid] = Some(seq);
        }
    }
    all.sort_unstable();
    all.dedup();
    assert_eq!(
        all.len(),
        consumed.iter().map(Vec::len).sum::<usize>(),
        "duplicate values dequeued"
    );
    introspect::check_invariants(&q).unwrap();
}

#[test]
fn concurrent_drain_recovers_every_value() {
    let threads = 6usize;
    let per_thread = 1_500u64;
    let q: Queue<u64> = Queue::new(threads);
    let mut handles = q.handles();
    let results: Vec<(Vec<u64>, u64)> = wfqueue_sync::thread::scope(|s| {
        let joins: Vec<_> = (0..threads)
            .map(|t| {
                let mut h = handles.remove(0);
                s.spawn(move || {
                    let mut got = Vec::new();
                    let mut enqueued = 0u64;
                    for i in 0..per_thread {
                        if i % 2 == 0 {
                            h.enqueue(((t as u64) << 32) | i);
                            enqueued += 1;
                        } else if let Some(v) = h.dequeue() {
                            got.push(v);
                        }
                    }
                    // Drain what is left cooperatively.
                    while let Some(v) = h.dequeue() {
                        got.push(v);
                    }
                    (got, enqueued)
                })
            })
            .collect();
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    });
    let total_enqueued: u64 = results.iter().map(|(_, e)| *e).sum();
    let mut all: Vec<u64> = results.into_iter().flat_map(|(g, _)| g).collect();
    assert_eq!(
        all.len() as u64,
        total_enqueued,
        "every value is dequeued exactly once"
    );
    all.sort_unstable();
    all.dedup();
    assert_eq!(all.len() as u64, total_enqueued, "no duplicates");
    introspect::check_invariants(&q).unwrap();
}

#[test]
fn enqueue_steps_do_not_grow_with_history() {
    // Theorem 22: enqueue cost is O(log p), independent of how many
    // operations happened before.
    let q: Queue<u64> = Queue::new(2);
    let mut h = q.register().unwrap();
    let early: u64 = (0..200)
        .map(|i| wfqueue_metrics::measure(|| h.enqueue(i)).1.memory_steps())
        .sum();
    for i in 0..20_000 {
        h.enqueue(i);
    }
    let late: u64 = (0..200)
        .map(|i| wfqueue_metrics::measure(|| h.enqueue(i)).1.memory_steps())
        .sum();
    assert!(
        late < early * 3,
        "enqueue steps grew with history: early={early}, late={late}"
    );
}

#[test]
fn debug_impls_are_nonempty() {
    let q: Queue<u8> = Queue::new(1);
    let h = q.register().unwrap();
    assert!(!format!("{q:?}").is_empty());
    assert!(!format!("{h:?}").is_empty());
}

#[test]
fn introspect_dump_and_render() {
    let q: Queue<u8> = Queue::new(2);
    let mut h = q.register().unwrap();
    h.enqueue(9);
    let _ = h.dequeue();
    let nodes = introspect::dump(&q);
    assert_eq!(nodes.len(), q.topology().len() - 1);
    let text = introspect::render(&nodes);
    assert!(text.contains("root"));
    assert!(text.contains("Enq(9)"));
    assert!(text.contains("Deq"));
    assert!(introspect::total_blocks(&q) > 0);
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum ScriptOp {
        Enq(u64),
        Deq,
    }

    fn script() -> impl Strategy<Value = Vec<(usize, ScriptOp)>> {
        proptest::collection::vec(
            (
                0usize..3,
                prop_oneof![any::<u64>().prop_map(ScriptOp::Enq), Just(ScriptOp::Deq),],
            ),
            0..200,
        )
    }

    proptest! {
        #[test]
        fn sequential_equivalence_with_vecdeque(ops in script()) {
            let q: Queue<u64> = Queue::new(3);
            let mut handles = q.handles();
            let mut model: VecDeque<u64> = VecDeque::new();
            for (who, op) in ops {
                match op {
                    ScriptOp::Enq(v) => {
                        handles[who].enqueue(v);
                        model.push_back(v);
                    }
                    ScriptOp::Deq => {
                        prop_assert_eq!(handles[who].dequeue(), model.pop_front());
                    }
                }
            }
            prop_assert!(introspect::check_invariants(&q).is_ok());
            // The reconstructed linearization replays to the same final state.
            let (_, final_state) = introspect::replay(&introspect::linearization(&q));
            let model_state: Vec<u64> = model.into_iter().collect();
            prop_assert_eq!(final_state, model_state);
        }
    }

    #[derive(Debug, Clone)]
    enum BatchOp {
        Enq(Vec<u64>),
        Deq(usize),
    }

    fn batch_script() -> impl Strategy<Value = Vec<(usize, BatchOp)>> {
        proptest::collection::vec(
            (
                0usize..3,
                prop_oneof![
                    proptest::collection::vec(any::<u64>(), 0..9).prop_map(BatchOp::Enq),
                    (0usize..9).prop_map(BatchOp::Deq),
                ],
            ),
            0..60,
        )
    }

    proptest! {
        #[test]
        fn batched_histories_match_per_op_vecdeque_replay(ops in batch_script()) {
            let q: Queue<u64> = Queue::new(3);
            let mut handles = q.handles();
            let mut model: VecDeque<u64> = VecDeque::new();
            for (who, op) in ops {
                match op {
                    BatchOp::Enq(vs) => {
                        model.extend(vs.iter().copied());
                        handles[who].enqueue_batch(vs);
                    }
                    BatchOp::Deq(k) => {
                        let expect: Vec<Option<u64>> =
                            (0..k).map(|_| model.pop_front()).collect();
                        prop_assert_eq!(handles[who].dequeue_batch(k), expect);
                    }
                }
            }
            prop_assert!(introspect::check_invariants(&q).is_ok());
            let (_, final_state) = introspect::replay(&introspect::linearization(&q));
            prop_assert_eq!(final_state, model.into_iter().collect::<Vec<_>>());
        }
    }
}

#[test]
fn approx_len_tracks_quiescent_size() {
    let q: Queue<u32> = Queue::new(2);
    assert_eq!(q.approx_len(), 0);
    let mut h = q.register().unwrap();
    for i in 0..10 {
        h.enqueue(i);
        assert_eq!(q.approx_len(), i as usize + 1);
    }
    for i in (0..10).rev() {
        let _ = h.dequeue();
        assert_eq!(q.approx_len(), i);
    }
    // Null dequeues keep it at zero.
    assert_eq!(h.dequeue(), None);
    assert_eq!(q.approx_len(), 0);
}

#[test]
fn batch_operations_match_vecdeque() {
    let q: Queue<u64> = Queue::new(2);
    let mut handles = q.handles();
    let mut model: VecDeque<u64> = VecDeque::new();
    let mut next = 0u64;
    for round in 0..60usize {
        let who = round % 2;
        let k = round % 7; // includes empty batches
        if round % 3 == 0 {
            let batch: Vec<u64> = (0..k as u64).map(|j| next + j).collect();
            next += k as u64;
            model.extend(batch.iter().copied());
            handles[who].enqueue_batch(batch);
        } else {
            let expect: Vec<Option<u64>> = (0..k).map(|_| model.pop_front()).collect();
            assert_eq!(handles[who].dequeue_batch(k), expect, "round {round}");
        }
    }
    introspect::check_invariants(&q).unwrap();
    // Batched histories replay identically through the linearization.
    let (_, final_state) = introspect::replay(&introspect::linearization(&q));
    assert_eq!(final_state, model.into_iter().collect::<Vec<_>>());
}

#[test]
fn batch_is_contiguous_in_linearization() {
    // Values of one batch appear back-to-back in L even when other
    // processes operate in between at the handle level (sequentially here:
    // blocks are appended whole, so this holds by construction).
    let q: Queue<u64> = Queue::new(2);
    let mut handles = q.handles();
    handles[0].enqueue_batch([1, 2, 3]);
    handles[1].enqueue_batch([10, 20]);
    handles[0].enqueue_batch([4, 5]);
    let lin = introspect::linearization(&q);
    let values: Vec<u64> = lin
        .iter()
        .map(|op| match op {
            introspect::LinOp::Enqueue(v) => *v,
            introspect::LinOp::Dequeue => unreachable!(),
        })
        .collect();
    assert_eq!(values, vec![1, 2, 3, 10, 20, 4, 5]);
}

#[test]
fn batch_of_one_matches_per_op_cas_count_exactly() {
    // Acceptance criterion: batch size 1 is byte-for-byte the per-op path —
    // same CAS instructions, same shared steps, same blocks.
    let script = |ops: &mut dyn FnMut(bool, u64)| {
        for i in 0..120u64 {
            ops(i % 3 != 2, i);
        }
    };
    let per_op = {
        let q: Queue<u64> = Queue::new(2);
        let mut h = q.register().unwrap();
        let (_, steps) = wfqueue_metrics::measure(|| {
            script(&mut |enq, i| {
                if enq {
                    h.enqueue(i);
                } else {
                    let _ = h.dequeue();
                }
            });
        });
        steps
    };
    let batched = {
        let q: Queue<u64> = Queue::new(2);
        let mut h = q.register().unwrap();
        let (_, steps) = wfqueue_metrics::measure(|| {
            script(&mut |enq, i| {
                if enq {
                    h.enqueue_batch([i]);
                } else {
                    let _ = h.dequeue_batch(1);
                }
            });
        });
        steps
    };
    assert_eq!(per_op.cas_total(), batched.cas_total(), "CAS count differs");
    assert_eq!(per_op, batched, "full step breakdown differs");
}

#[test]
fn batched_enqueues_amortize_propagation() {
    // One propagate per batch: enqueueing n values in batches of k must
    // spend roughly 1/k of the per-op path's shared steps.
    let n = 512u64;
    let steps_for = |k: usize| {
        let q: Queue<u64> = Queue::new(4);
        let mut h = q.register().unwrap();
        let (_, steps) = wfqueue_metrics::measure(|| {
            let mut sent = 0u64;
            while sent < n {
                let batch: Vec<u64> = (sent..sent + k as u64).collect();
                sent += k as u64;
                h.enqueue_batch(batch);
            }
        });
        steps.memory_steps()
    };
    let per_op = steps_for(1);
    let batched = steps_for(64);
    assert!(
        batched * 8 < per_op,
        "batching 64 should cut steps by ≫8×: per-op={per_op}, batched={batched}"
    );
}

#[test]
fn drain_empties_in_fifo_order() {
    let q: Queue<u32> = Queue::new(1);
    let mut h = q.register().unwrap();
    for i in 0..50 {
        h.enqueue(i);
    }
    let drained: Vec<u32> = h.drain().collect();
    assert_eq!(drained, (0..50).collect::<Vec<_>>());
    assert_eq!(h.dequeue(), None);
    // Drain on empty yields nothing.
    assert_eq!(h.drain().count(), 0);
}

// ---------------------------------------------------------------------------
// Epoch-based tree truncation (unbounded::reclaim)
// ---------------------------------------------------------------------------

/// Mixed single-handle script shared by the reclamation tests: enqueues,
/// dequeues (hitting both empty and non-empty states) and batches.
fn reclaim_script(h: &mut super::Handle<'_, u64>, model: &mut VecDeque<u64>) {
    for round in 0..240u64 {
        match round % 6 {
            0 | 1 | 3 => {
                h.enqueue(round);
                model.push_back(round);
            }
            2 | 4 => {
                assert_eq!(h.dequeue(), model.pop_front());
            }
            _ => {
                let batch: Vec<u64> = vec![round, round + 1_000];
                model.extend(batch.iter().copied());
                h.enqueue_batch(batch);
                for r in h.dequeue_batch(3) {
                    assert_eq!(r, model.pop_front());
                }
            }
        }
    }
}

#[test]
fn reclaim_off_is_step_identical_to_default_queue() {
    // The acceptance criterion: with `ReclaimPolicy::Off` the operation
    // path must be byte-for-byte the paper's — same CASes, same loads, same
    // stores, same allocs.
    let run = |q: Queue<u64>| {
        let mut h = q.register().unwrap();
        let mut model = VecDeque::new();
        let (_, steps) = wfqueue_metrics::measure(|| reclaim_script(&mut h, &mut model));
        introspect::check_invariants(&q).unwrap();
        steps
    };
    let default_steps = run(Queue::new(2));
    let off_steps = run(Queue::with_reclaim(2, ReclaimPolicy::Off));
    assert_eq!(
        default_steps, off_steps,
        "ReclaimPolicy::Off must not change the hot path"
    );
}

#[test]
fn reclaim_truncates_dead_prefix_and_preserves_semantics() {
    let q: Queue<u64> = Queue::with_reclaim(2, ReclaimPolicy::EveryKRootBlocks(8));
    let mut h = q.register().unwrap();
    let mut model = VecDeque::new();
    reclaim_script(&mut h, &mut model);
    let stats = q.reclaim_stats();
    assert!(stats.truncations > 0, "the every-8 trigger must have fired");
    assert!(stats.reclaimed_blocks > 0);
    assert!(stats.frontier > 1);
    introspect::check_invariants(&q).unwrap();
    // The retained state still dequeues the correct values.
    while let Some(expect) = model.pop_front() {
        assert_eq!(h.dequeue(), Some(expect));
    }
    assert_eq!(h.dequeue(), None);
    introspect::check_invariants(&q).unwrap();
}

#[test]
fn reclaim_logical_totals_match_paper_queue() {
    // live + reclaimed on the truncating queue must equal the block count
    // the never-reclaiming queue retains for the identical script.
    let run = |q: Queue<u64>| {
        let mut h = q.register().unwrap();
        let mut model = VecDeque::new();
        reclaim_script(&mut h, &mut model);
        introspect::block_counts(&q)
    };
    let paper = run(Queue::new(2));
    let reclaiming = run(Queue::with_reclaim(2, ReclaimPolicy::EveryKRootBlocks(4)));
    assert_eq!(paper.reclaimed, 0);
    assert_eq!(
        reclaiming.logical, paper.logical,
        "truncation must not change how many blocks the tree ever retained"
    );
    assert!(
        reclaiming.live < paper.live / 4,
        "churn must leave most of the paper queue's {} blocks dead; \
         reclaiming queue still holds {}",
        paper.live,
        reclaiming.live
    );
}

#[test]
fn try_reclaim_on_drained_queue_truncates_everything_dead() {
    // A period too large to ever self-trigger: only the explicit call runs.
    let q: Queue<u64> = Queue::with_reclaim(1, ReclaimPolicy::EveryKRootBlocks(1_000_000));
    let mut h = q.register().unwrap();
    for i in 0..100 {
        h.enqueue(i);
    }
    assert_eq!(h.drain().count(), 100);
    let before = introspect::total_blocks(&q);
    let freed = q.try_reclaim();
    assert!(freed > 0, "a fully drained history is all dead");
    let after = introspect::total_blocks(&q);
    assert_eq!(after, before - freed, "freed slots leave the live count");
    let nodes = q.topology().len() - 1;
    assert!(
        after <= nodes,
        "at most one summary block per node may remain, got {after} over {nodes} nodes"
    );
    introspect::check_invariants(&q).unwrap();
    // A second pass finds nothing new.
    assert_eq!(q.try_reclaim(), 0);
    // The queue keeps working past a full truncation.
    let mut model = VecDeque::new();
    reclaim_script(&mut h, &mut model);
    for expect in model {
        assert_eq!(h.dequeue(), Some(expect));
    }
    introspect::check_invariants(&q).unwrap();
}

#[test]
fn reclaim_off_queue_never_truncates() {
    let q: Queue<u64> = Queue::with_reclaim(1, ReclaimPolicy::Off);
    let mut h = q.register().unwrap();
    for i in 0..50 {
        h.enqueue(i);
        let _ = h.dequeue();
    }
    assert_eq!(q.try_reclaim(), 0);
    let stats = q.reclaim_stats();
    assert_eq!((stats.truncations, stats.reclaimed_blocks), (0, 0));
    assert_eq!(stats.frontier, 1, "frontier never moves when off");
    assert!(!q.reclaim_policy().enabled());
}

#[test]
#[should_panic(expected = "at least 1")]
fn zero_reclaim_period_is_rejected() {
    let _ = Queue::<u64>::with_reclaim(1, ReclaimPolicy::EveryKRootBlocks(0));
}
