//! The write-once segmented vector.

use std::fmt;
use std::marker::PhantomData;
use std::ptr;
use std::sync::atomic::{AtomicPtr, Ordering};

use wfqueue_metrics as metrics;

/// Number of entries in segment 0; segment `s` holds `BASE << s` entries.
const BASE: usize = 64;
/// log2 of [`BASE`].
const BASE_LOG2: u32 = BASE.trailing_zeros();
/// Number of segments in the directory. Total capacity is
/// `(2^SEGMENTS - 1) * BASE` entries, i.e. effectively unbounded (≥ 2^63).
const SEGMENTS: usize = 58;

/// An unbounded, lock-free, **write-once** vector.
///
/// `SegVec<T>` models the paper's infinite `blocks` array: each index can be
/// installed at most once (CAS from empty), is never overwritten, and is
/// freed only when the `SegVec` itself is dropped. Readers get `&T`
/// references that live as long as the vector, with no synchronisation
/// beyond one atomic load per level.
///
/// Storage is a fixed directory of segments whose sizes grow geometrically
/// (64, 128, 256, ...), so `get`/`try_install` are wait-free with O(1) work,
/// and installing never moves existing entries.
///
/// # Examples
///
/// ```
/// use wfqueue_segvec::SegVec;
///
/// let v: SegVec<String> = SegVec::new();
/// assert!(v.get(3).is_none());
/// v.try_install(3, Box::new("hello".to_owned())).unwrap();
/// assert_eq!(v.get(3).map(String::as_str), Some("hello"));
/// ```
pub struct SegVec<T> {
    /// `directory[s]` points to an array of `BASE << s` slot pointers, or is
    /// null if the segment has not been allocated yet.
    directory: [AtomicPtr<AtomicPtr<T>>; SEGMENTS],
    _marker: PhantomData<T>,
}

// SAFETY: `SegVec` hands out `&T` to any thread and accepts `Box<T>` from
// any thread, so it is `Send`/`Sync` exactly when `T` is both.
unsafe impl<T: Send + Sync> Send for SegVec<T> {}
// SAFETY: see above.
unsafe impl<T: Send + Sync> Sync for SegVec<T> {}

/// Maps a global index to `(segment, offset)`.
///
/// Segment `s` covers global indices `[(2^s - 1) * BASE, (2^(s+1) - 1) * BASE)`.
#[inline]
fn locate(index: usize) -> (usize, usize) {
    let block = index / BASE + 1;
    let seg = (usize::BITS - 1 - block.leading_zeros()) as usize;
    let seg_start = ((1usize << seg) - 1) << BASE_LOG2;
    (seg, index - seg_start)
}

impl<T> SegVec<T> {
    /// Creates an empty vector.
    ///
    /// # Examples
    ///
    /// ```
    /// let v: wfqueue_segvec::SegVec<u32> = wfqueue_segvec::SegVec::new();
    /// assert!(v.get(0).is_none());
    /// ```
    #[must_use]
    pub fn new() -> Self {
        SegVec {
            directory: [(); SEGMENTS].map(|()| AtomicPtr::new(ptr::null_mut())),
            _marker: PhantomData,
        }
    }

    /// Returns the entry at `index`, or `None` if nothing has been installed
    /// there yet. Counts as one shared-memory step.
    #[must_use]
    pub fn get(&self, index: usize) -> Option<&T> {
        metrics::record_shared_load();
        let (seg, off) = locate(index);
        let seg_ptr = self.directory[seg].load(Ordering::Acquire);
        if seg_ptr.is_null() {
            return None;
        }
        // SAFETY: a non-null directory entry points to a live array of
        // `BASE << seg` slots; it is published with Release and never freed
        // before `self` is dropped (Drop takes `&mut self`).
        let slot = unsafe { &*seg_ptr.add(off) };
        let value = slot.load(Ordering::Acquire);
        if value.is_null() {
            None
        } else {
            // SAFETY: slots are write-once (CAS from null in `try_install`)
            // and the pointee is freed only in Drop, so the reference is
            // valid for the lifetime of `self`.
            Some(unsafe { &*value })
        }
    }

    /// Attempts to install `value` at `index` (a CAS from empty).
    ///
    /// On success returns a reference to the installed value. If another
    /// value was installed first, returns it together with the rejected box
    /// so the caller can reuse or drop it. Counts as one CAS step.
    ///
    /// # Examples
    ///
    /// ```
    /// let v = wfqueue_segvec::SegVec::new();
    /// assert!(v.try_install(0, Box::new(1)).is_ok());
    /// let (existing, rejected) = v.try_install(0, Box::new(2)).unwrap_err();
    /// assert_eq!((*existing, *rejected), (1, 2));
    /// ```
    pub fn try_install(&self, index: usize, value: Box<T>) -> Result<&T, (&T, Box<T>)> {
        let (seg, off) = locate(index);
        let segment = self.segment_or_alloc(seg);
        // SAFETY: `segment` points to a live array of `BASE << seg` slots
        // (see `segment_or_alloc`); `off < BASE << seg` by `locate`.
        let slot = unsafe { &*segment.add(off) };
        let raw = Box::into_raw(value);
        match slot.compare_exchange(ptr::null_mut(), raw, Ordering::SeqCst, Ordering::SeqCst) {
            Ok(_) => {
                metrics::record_cas(true);
                // SAFETY: we just published `raw`; write-once slots are never
                // freed before `self` is dropped.
                Ok(unsafe { &*raw })
            }
            Err(existing) => {
                metrics::record_cas(false);
                // SAFETY: `raw` came from `Box::into_raw` above and was not
                // published (the CAS failed), so we uniquely own it again.
                let rejected = unsafe { Box::from_raw(raw) };
                // SAFETY: `existing` is non-null (CAS failed against a
                // non-null current value) and write-once.
                Err((unsafe { &*existing }, rejected))
            }
        }
    }

    /// Returns the segment array for `seg`, allocating and publishing it if
    /// necessary. Losing allocators free their candidate.
    fn segment_or_alloc(&self, seg: usize) -> *const AtomicPtr<T> {
        let dir = &self.directory[seg];
        let current = dir.load(Ordering::Acquire);
        if !current.is_null() {
            return current;
        }
        let len = BASE << seg;
        let mut fresh: Vec<AtomicPtr<T>> = Vec::with_capacity(len);
        fresh.resize_with(len, || AtomicPtr::new(ptr::null_mut()));
        let boxed: Box<[AtomicPtr<T>]> = fresh.into_boxed_slice();
        let raw = Box::into_raw(boxed) as *mut AtomicPtr<T>;
        match dir.compare_exchange(ptr::null_mut(), raw, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => raw,
            Err(winner) => {
                // SAFETY: our candidate lost the race and was never
                // published; reconstitute the box to free it.
                unsafe {
                    drop(Box::from_raw(ptr::slice_from_raw_parts_mut(raw, len)));
                }
                winner
            }
        }
    }

    /// Returns an iterator over installed entries in `0..len`, yielding
    /// `None` for empty slots. Intended for tests and introspection.
    pub fn iter_prefix(&self, len: usize) -> impl Iterator<Item = Option<&T>> + '_ {
        (0..len).map(move |i| self.get(i))
    }
}

impl<T> Default for SegVec<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: fmt::Debug> fmt::Debug for SegVec<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Show the installed prefix (stops at the first hole), which is the
        // meaningful contents under the queue's Invariant 3.
        let mut list = f.debug_list();
        let mut i = 0;
        while let Some(v) = self.get(i) {
            list.entry(v);
            i += 1;
            if i > 64 {
                break;
            }
        }
        list.finish()
    }
}

impl<T> Drop for SegVec<T> {
    fn drop(&mut self) {
        for (seg, dir) in self.directory.iter_mut().enumerate() {
            let seg_ptr = *dir.get_mut();
            if seg_ptr.is_null() {
                continue;
            }
            let len = BASE << seg;
            // SAFETY: exclusive access (`&mut self`); the segment was
            // allocated by `segment_or_alloc` with exactly this length.
            let segment = unsafe { Box::from_raw(ptr::slice_from_raw_parts_mut(seg_ptr, len)) };
            for slot in segment.iter() {
                let value = slot.load(Ordering::Relaxed);
                if !value.is_null() {
                    // SAFETY: installed values are owned by the vector and
                    // no references outlive `self`.
                    unsafe { drop(Box::from_raw(value)) };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn locate_covers_consecutive_indices() {
        // Each global index maps to a unique (segment, offset) pair and the
        // segment boundaries line up with geometric growth.
        let mut last = (0usize, usize::MAX);
        for i in 0..100_000 {
            let (seg, off) = locate(i);
            assert!(off < BASE << seg, "offset in range at {i}");
            if seg == last.0 {
                assert_eq!(off, last.1.wrapping_add(1), "offsets consecutive at {i}");
            } else {
                assert_eq!(seg, last.0 + 1, "segments consecutive at {i}");
                assert_eq!(off, 0, "new segment starts at 0 at {i}");
            }
            last = (seg, off);
        }
    }

    #[test]
    fn locate_boundaries() {
        assert_eq!(locate(0), (0, 0));
        assert_eq!(locate(BASE - 1), (0, BASE - 1));
        assert_eq!(locate(BASE), (1, 0));
        assert_eq!(locate(3 * BASE - 1), (1, 2 * BASE - 1));
        assert_eq!(locate(3 * BASE), (2, 0));
    }

    #[test]
    fn get_empty_returns_none() {
        let v: SegVec<u64> = SegVec::new();
        assert!(v.get(0).is_none());
        assert!(v.get(12345).is_none());
    }

    #[test]
    fn install_then_get() {
        let v = SegVec::new();
        for i in (0..1000).rev() {
            v.try_install(i, Box::new(i as u64 * 3)).unwrap();
        }
        for i in 0..1000 {
            assert_eq!(v.get(i), Some(&(i as u64 * 3)));
        }
    }

    #[test]
    fn double_install_fails_and_returns_box() {
        let v = SegVec::new();
        v.try_install(7, Box::new("first")).unwrap();
        let (existing, rejected) = v.try_install(7, Box::new("second")).unwrap_err();
        assert_eq!(*existing, "first");
        assert_eq!(*rejected, "second");
        assert_eq!(v.get(7), Some(&"first"));
    }

    #[test]
    fn sparse_indices_across_segments() {
        let v = SegVec::new();
        for &i in &[0usize, 63, 64, 191, 192, 1000, 65_535, 1 << 20] {
            v.try_install(i, Box::new(i)).unwrap();
        }
        for &i in &[0usize, 63, 64, 191, 192, 1000, 65_535, 1 << 20] {
            assert_eq!(v.get(i), Some(&i));
        }
        assert!(v.get(1).is_none());
        assert!(v.get((1 << 20) - 1).is_none());
    }

    #[test]
    fn drop_frees_all_values() {
        struct CountDrop(Arc<AtomicUsize>);
        impl Drop for CountDrop {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let v = SegVec::new();
            for i in 0..500 {
                v.try_install(i, Box::new(CountDrop(Arc::clone(&drops))))
                    .ok();
            }
            // A lost race also drops its box exactly once.
            let _ = v.try_install(0, Box::new(CountDrop(Arc::clone(&drops))));
            assert_eq!(drops.load(Ordering::Relaxed), 1);
        }
        assert_eq!(drops.load(Ordering::Relaxed), 501);
    }

    #[test]
    fn concurrent_install_single_winner_per_slot() {
        let v: Arc<SegVec<usize>> = Arc::new(SegVec::new());
        let threads = 8;
        let slots = 256;
        let winners: Vec<_> = (0..threads)
            .map(|t| {
                let v = Arc::clone(&v);
                std::thread::spawn(move || {
                    let mut won = 0;
                    for i in 0..slots {
                        if v.try_install(i, Box::new(t)).is_ok() {
                            won += 1;
                        }
                    }
                    won
                })
            })
            .collect();
        let total: usize = winners.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, slots, "exactly one install wins per slot");
        for i in 0..slots {
            assert!(v.get(i).is_some());
        }
    }

    #[test]
    fn send_sync_bounds() {
        fn assert_send_sync<X: Send + Sync>() {}
        assert_send_sync::<SegVec<u64>>();
    }

    #[test]
    fn debug_is_nonempty() {
        let v: SegVec<u8> = SegVec::new();
        assert_eq!(format!("{v:?}"), "[]");
        v.try_install(0, Box::new(9)).unwrap();
        assert_eq!(format!("{v:?}"), "[9]");
    }
}
