//! Deliberately violating input for the lint's own tests
//! (`crates/xtask/src/main.rs::tests::violating_fixture_trips_every_rule`).
//!
//! This file is **not** compiled and **not** walked by `cargo lint`
//! (only `src`/`tests`/`examples`/`benches` roots are); it exists so the
//! test suite can prove each rule still fires on a violating input.
//! None of the comments below may name the required marker tokens — a
//! marker in a comment satisfies its rule, which is the point.

// Trips the facade rule: raw std paths outside crates/sync.
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

// Trips the allow rule: no justification given.
#[allow(dead_code)]
fn spin(flag: &AtomicUsize) {
    // Trips the ordering rule: sequentially consistent load, unjustified.
    while flag.load(Ordering::SeqCst) == 0 {
        thread::yield_now();
    }
}

fn peek(p: *const u8) -> u8 {
    // Trips the safety rule: no justification comment on the block below.
    unsafe { *p }
}
