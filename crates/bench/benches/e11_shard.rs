//! Experiment E11-shard — the sharded frontend multiplies root bandwidth.
//!
//! The ordering tree's single contention point is the root CAS; the
//! `wfqueue_shard` frontend fans operations out over `S` independent
//! shards. Under `PerProducer` routing each shard's tree is additionally
//! sized to the handles pinned to it (`⌈p/S⌉` instead of `p`), so the
//! per-operation propagation shrinks from `O(log p)` to `O(log(p/S))`
//! levels — a step-count win that shows up even on a single core, on top
//! of the root-CAS spreading that shows up under real parallelism.
//!
//! The experiment sweeps `S ∈ {1, 2, 4, 8}` at `p = 8` threads in a mixed
//! enqueue+dequeue closed loop (`run_workload`, which also audits
//! per-producer FIFO and no-duplication on the composite) and reports
//! wall-clock throughput plus exact steps/CAS per operation:
//!
//! * `PerProducer` routing on both wait-free variants — the headline
//!   series; the binary **asserts** throughput strictly increases from
//!   `S = 1` through `S = 4` on both (the acceptance criterion);
//! * `Rendezvous` routing on the unbounded variant for context (sweeping
//!   dequeuers keep full-coverage semantics; shards stay `p`-capacity, so
//!   the win is contention spreading only). Its rotating-ticket sweep
//!   probes up to `S` shards from an arbitrary start, so the series
//!   historically *degraded* from `S = 4` to `S = 8` (E11b);
//! * `Nearest` routing (ISSUE 7) — the contention-aware replacement:
//!   hint-guided nearest-first scan, no global ticket. The binary
//!   **asserts** its `S = 8` point holds at least 95% of its `S = 4`
//!   throughput — the sweep-degradation the scan was built to remove;
//! * `Adaptive` routing for context: `Nearest`'s scan plus feedback-driven
//!   re-homing (the feedback path adds per-op bookkeeping, so it trades a
//!   little fixed cost for resilience to skewed placements).
//!
//! `--json` prints a machine-readable summary (used by
//! `scripts/bench_e11.sh` to record `BENCH_e11.json`).

use wfqueue_harness::queue_api::{ConcurrentQueue, Routing, WfShardedBounded, WfShardedUnbounded};
use wfqueue_harness::table::{f1, f2, Table};
use wfqueue_harness::workload::{run_workload, RunReport, WorkloadSpec};

const SHARD_COUNTS: &[usize] = &[1, 2, 4, 8];
const THREADS: usize = 8;
/// Fixed per-shard GC period for the bounded series, so the sweep varies
/// only the shard count (the paper-default period depends on the shard's
/// capacity, which the sweep changes).
const BOUNDED_GC_PERIOD: usize = 64;
/// Best-of-N wall-clock runs per point (step counts are deterministic
/// given the schedule; wall clock is not).
const REPS: usize = 3;

fn spec(ops_per_thread: usize) -> WorkloadSpec {
    WorkloadSpec {
        threads: THREADS,
        ops_per_thread,
        // Enqueue-biased 60/40 mix: the queue grows, so dequeues mostly
        // return values and the run exercises both op classes throughout.
        enqueue_permille: 600,
        prefill: 0,
        // One fixed seed for every point of the sweep: all shard counts
        // run the identical op mix, so the strict-increase assertion below
        // compares sharding alone, not mix variation.
        seed: 0xE11,
    }
}

struct SeriesPoint {
    queue: &'static str,
    routing: &'static str,
    shards: usize,
    report: RunReport,
}

fn sweep<Q: ConcurrentQueue<u64>, F: Fn(usize) -> Q>(
    make: F,
    queue: &'static str,
    routing: &'static str,
    ops_per_thread: usize,
    out: &mut Vec<SeriesPoint>,
) {
    for &shards in SHARD_COUNTS {
        let mut best: Option<RunReport> = None;
        for _ in 0..REPS {
            let q = make(shards);
            let report = run_workload(&q, &spec(ops_per_thread));
            assert!(
                report.audits_ok(),
                "{queue}/{routing} S={shards}: audits failed"
            );
            if best.is_none_or(|b| report.ops_per_sec() > b.ops_per_sec()) {
                best = Some(report);
            }
        }
        out.push(SeriesPoint {
            queue,
            routing,
            shards,
            report: best.expect("REPS >= 1"),
        });
    }
}

fn ops_per_sec_at(series: &[SeriesPoint], queue: &str, routing: &str, shards: usize) -> f64 {
    series
        .iter()
        .find(|p| p.queue == queue && p.routing == routing && p.shards == shards)
        .expect("swept point present")
        .report
        .ops_per_sec()
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");

    let mut series: Vec<SeriesPoint> = Vec::new();
    sweep(
        |s| WfShardedUnbounded::new(s, THREADS, Routing::PerProducer),
        "wf-sharded-unbounded",
        "per-producer",
        8_192,
        &mut series,
    );
    sweep(
        |s| WfShardedBounded::with_gc_period(s, THREADS, BOUNDED_GC_PERIOD, Routing::PerProducer),
        "wf-sharded-bounded",
        "per-producer",
        1_536,
        &mut series,
    );
    sweep(
        |s| WfShardedUnbounded::new(s, THREADS, Routing::Rendezvous),
        "wf-sharded-unbounded",
        "rendezvous",
        8_192,
        &mut series,
    );
    sweep(
        |s| WfShardedUnbounded::new(s, THREADS, Routing::Nearest),
        "wf-sharded-unbounded",
        "nearest",
        8_192,
        &mut series,
    );
    sweep(
        |s| WfShardedUnbounded::new(s, THREADS, Routing::Adaptive),
        "wf-sharded-unbounded",
        "adaptive",
        8_192,
        &mut series,
    );

    // Acceptance: enqueue+dequeue throughput strictly increasing from
    // S = 1 to S = 4 on both variants under per-producer routing.
    for queue in ["wf-sharded-unbounded", "wf-sharded-bounded"] {
        let t1 = ops_per_sec_at(&series, queue, "per-producer", 1);
        let t2 = ops_per_sec_at(&series, queue, "per-producer", 2);
        let t4 = ops_per_sec_at(&series, queue, "per-producer", 4);
        assert!(
            t1 < t2 && t2 < t4,
            "{queue}: throughput not strictly increasing S=1..4: {t1:.0} / {t2:.0} / {t4:.0}"
        );
    }

    // Acceptance (E11b, ISSUE 7): the contention-aware nearest scan must
    // not degrade from S = 4 to S = 8 the way the rotating-ticket sweep
    // did — S = 8 holds ≥ 95% of S = 4 throughput (the slack absorbs
    // wall-clock noise; the sweep's historical drop was far larger).
    {
        let t4 = ops_per_sec_at(&series, "wf-sharded-unbounded", "nearest", 4);
        let t8 = ops_per_sec_at(&series, "wf-sharded-unbounded", "nearest", 8);
        assert!(
            t8 >= 0.95 * t4,
            "nearest scan degraded S=4 -> S=8: {t4:.0} -> {t8:.0} ops/s"
        );
    }

    if json {
        // Hand-rolled JSON (no serde in the offline workspace).
        let mut rows = String::new();
        for (i, p) in series.iter().enumerate() {
            if i > 0 {
                rows.push_str(",\n");
            }
            rows.push_str(&format!(
                "    {{\"queue\": \"{}\", \"routing\": \"{}\", \"shards\": {}, \
                 \"ops_per_sec\": {:.0}, \"steps_per_op\": {:.2}, \"cas_per_op\": {:.3}}}",
                p.queue,
                p.routing,
                p.shards,
                p.report.ops_per_sec(),
                p.report.steps_avg(),
                p.report.cas_avg(),
            ));
        }
        println!(
            "{{\n  \"experiment\": \"e11_shard\",\n  \"threads\": {THREADS},\n  \
             \"bounded_gc_period\": {BOUNDED_GC_PERIOD},\n  \"series\": [\n{rows}\n  ]\n}}"
        );
        return;
    }

    for (queue, routing) in [
        ("wf-sharded-unbounded", "per-producer"),
        ("wf-sharded-bounded", "per-producer"),
        ("wf-sharded-unbounded", "rendezvous"),
        ("wf-sharded-unbounded", "nearest"),
        ("wf-sharded-unbounded", "adaptive"),
    ] {
        let mut table = Table::new(
            &format!("E11-shard: {queue} / {routing} vs shard count (p = {THREADS})"),
            &["S", "ops/s", "steps/op", "cas/op", "speedup vs S=1"],
        );
        let base = ops_per_sec_at(&series, queue, routing, 1);
        for p in series
            .iter()
            .filter(|p| p.queue == queue && p.routing == routing)
        {
            table.row_owned(vec![
                p.shards.to_string(),
                format!("{:.0}", p.report.ops_per_sec()),
                f1(p.report.steps_avg()),
                f2(p.report.cas_avg()),
                format!("{:.2}x", p.report.ops_per_sec() / base),
            ]);
        }
        println!("{table}");
    }
    println!(
        "expected shape: under per-producer routing each shard's tree serves p/S\n\
         pinned handles, so steps/op and cas/op fall with S (shallower propagation)\n\
         and throughput rises; rendezvous keeps p-capacity shards (sweeping\n\
         dequeuers), so its win is root-CAS spreading under real parallelism —\n\
         and its rotating ticket makes it degrade at high S. nearest replaces\n\
         the ticket with a hint-guided nearest-first scan: no global RMW per\n\
         sweep and empty shards are skipped while hints are warm, so S=8 must\n\
         hold >= 95% of S=4 (asserted). adaptive adds feedback bookkeeping on\n\
         top of the same scan.\n"
    );
}
