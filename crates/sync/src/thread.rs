//! Facade over [`std::thread`]: the workspace's only sanctioned way to
//! spawn, scope, or yield.
//!
//! Everything re-exported here is the `std` item, verbatim — the facade
//! exists so the `cargo lint` xtask can forbid raw `std::thread` imports
//! and keep the doorway single. Two functions are wrapped rather than
//! re-exported:
//!
//! * [`yield_now`] — inside a `crate::model::explore` run it is a pure
//!   *scheduling point* (the model may switch threads there, which is what
//!   a spin-loop author means by yielding); outside it is
//!   [`std::thread::yield_now`].
//! * [`sleep`] — inside a model run it degrades to a scheduling point
//!   (modeled time does not pass); outside it is [`std::thread::sleep`].
//!
//! OS-thread creation (`spawn`/`scope`) is intentionally **not** modeled:
//! code under the model checker creates its virtual threads with
//! `crate::model::spawn`, and the model run aborts with a clear message
//! if real spawning sneaks in (checked in `model::explore`'s scheduler,
//! which controls every participating thread).

pub use std::thread::{
    available_parallelism, current, panicking, park, park_timeout, scope, spawn, Builder,
    JoinHandle, Scope, ScopedJoinHandle, Thread,
};

use std::time::Duration;

/// Cooperatively yields: a model scheduling point inside
/// `crate::model::explore`, [`std::thread::yield_now`] otherwise.
#[inline]
pub fn yield_now() {
    #[cfg(feature = "model")]
    if crate::model::hooks::yield_point() {
        return;
    }
    std::thread::yield_now();
}

/// Sleeps for `dur` — except inside a model run, where it is a scheduling
/// point (the model has no clock; sleeping cannot be used for
/// synchronization under exhaustive exploration anyway).
#[inline]
pub fn sleep(dur: Duration) {
    #[cfg(feature = "model")]
    if crate::model::hooks::yield_point() {
        return;
    }
    std::thread::sleep(dur);
}
