//! Offline shim for `proptest` (see `vendor/README.md`).
//!
//! Implements the subset of the proptest 1.x API the workspace uses:
//! the [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] /
//! [`prop_assume!`] / [`prop_oneof!`] macros, the [`Strategy`](strategy::Strategy)
//! trait (ranges, tuples, [`Just`](strategy::Just), [`any`](strategy::any),
//! `prop_map`, unions) and [`collection::vec`] / [`collection::btree_map`].
//!
//! Cases are generated from a deterministic per-test RNG (seeded from the
//! test's name), so failures are reproducible; there is **no shrinking** —
//! a failing case is reported as-is.

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Defines property tests.
///
/// Supports the forms used in this workspace:
///
/// ```text
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]  // optional
///     #[test]
///     fn my_property(x in 0u64..10, ys in proptest::collection::vec(any::<u64>(), 0..5)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng =
                $crate::test_runner::TestRng::deterministic(stringify!($name));
            let mut executed: u32 = 0;
            let mut attempts: u32 = 0;
            while executed < config.cases && attempts < config.cases.saturating_mul(10) {
                attempts += 1;
                $(
                    let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut rng);
                )+
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                match result {
                    ::std::result::Result::Ok(()) => executed += 1,
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject,
                    ) => continue,
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(msg),
                    ) => panic!("proptest: property {} failed: {}", stringify!($name), msg),
                }
            }
            // Mirror real proptest's "too many global rejects" abort: a
            // property that never executes a case must not pass vacuously.
            assert!(
                executed >= config.cases,
                "proptest: property {} gave up after {} attempts: only {}/{} \
                 cases executed (too many prop_assume! rejects)",
                stringify!($name),
                attempts,
                executed,
                config.cases,
            );
        }
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body (failure is reported with
/// the generated inputs' debug output left to the panic message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts two values are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `{:?}` == `{:?}`", l, r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l == *r, $($fmt)*);
            }
        }
    };
}

/// Rejects the current case (it does not count towards the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Picks one of several strategies (uniformly) for each generated case.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}
