//! The CAS retry problem, live (§1 of the paper).
//!
//! Runs the same contended 50/50 workload twice on the Michael–Scott queue
//! and on the wait-free queue: once under the natural OS schedule, once
//! under the adversarial scheduler (every queue yields the CPU inside its
//! read-to-CAS race window, realising the worst-case round-robin schedule
//! the paper's Ω(p) argument uses). The MS-queue's CAS count explodes; the
//! wait-free queue's does not — a lost CAS never makes it retry.
//!
//! Run with: `cargo run --release --example cas_retry_problem`

use wfqueue_harness::queue_api::{Ms, WfUnbounded};
use wfqueue_harness::table::{f2, Table};
use wfqueue_harness::workload::{run_workload, RunReport, WorkloadSpec};

fn cas_per_op(r: &RunReport) -> f64 {
    (r.enqueue.cas_total + r.dequeue_hit.cas_total + r.dequeue_null.cas_total) as f64
        / r.total_ops() as f64
}

fn failed_per_op(r: &RunReport) -> f64 {
    (r.enqueue.cas_failed + r.dequeue_hit.cas_failed + r.dequeue_null.cas_failed) as f64
        / r.total_ops() as f64
}

fn main() {
    let threads = 16;
    let spec = WorkloadSpec {
        threads,
        ops_per_thread: 3_000,
        enqueue_permille: 500,
        prefill: 128,
        seed: 7,
    };

    let mut table = Table::new(
        "CAS instructions per operation, p=16 (natural vs adversarial schedule)",
        &["queue", "schedule", "cas/op", "failed cas/op"],
    );
    for adversarial in [false, true] {
        wfqueue_metrics::set_adversary(adversarial);
        let schedule = if adversarial {
            "adversarial"
        } else {
            "natural"
        };
        let ms = run_workload(&Ms::new(), &spec);
        table.row_owned(vec![
            "ms-queue".into(),
            schedule.into(),
            f2(cas_per_op(&ms)),
            f2(failed_per_op(&ms)),
        ]);
        let wf = run_workload(&WfUnbounded::new(threads), &spec);
        table.row_owned(vec![
            "wf-queue".into(),
            schedule.into(),
            f2(cas_per_op(&wf)),
            f2(failed_per_op(&wf)),
        ]);
    }
    wfqueue_metrics::set_adversary(false);
    println!("{table}");
    println!(
        "The adversary turns nearly every MS-queue CAS into a retry (cost grows with p),\n\
         while the wait-free queue's CAS count stays at its O(log p) budget: its lost\n\
         CASes are absorbed by the double-Refresh rule instead of being retried."
    );
}
