//! Task scheduler: the workload the paper's introduction motivates
//! ("sharing resources or tasks") — fork-join tile rendering on the
//! **work-stealing executor** (`wfqueue_executor`), the pool built out
//! of this repo's queues.
//!
//! Producers submit jobs through per-producer [`Spawner`]s (each pinned
//! to its own shard of the §3 unbounded injection queue — the spawn
//! itself is wait-free). Each job task *forks* its tiles from inside the
//! pool: worker-internal spawns land in that worker's bounded local
//! ring, so an imbalanced fork is rebalanced by the other workers
//! stealing half-batches via the ring's all-or-nothing multi-ticket
//! dequeues. A hashed-wheel timer ([`Executor::spawn_after`]) snapshots
//! the counters mid-flight, and `shutdown()` certifies the drain — every
//! forked tile ran (`spawned == completed`) before the pool joined its
//! workers.
//!
//! Run with: `cargo run --release --example task_scheduler`

use std::sync::Arc;
use std::time::Duration;

use wfqueue_executor::{Executor, ExecutorConfig};
use wfqueue_sync::atomic::{AtomicU64, Ordering};

/// A unit of work: pretend to render a tile by hashing its coordinates.
#[derive(Debug, Clone, Copy)]
struct Tile {
    job: u32,
    index: u32,
}

fn render(tile: Tile) -> u64 {
    // A few rounds of integer mixing to simulate real work.
    let mut x = (u64::from(tile.job) << 32) | u64::from(tile.index);
    for _ in 0..32 {
        x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17) ^ 0xDEAD_BEEF;
    }
    x
}

fn main() {
    let producers = 2usize;
    let workers = 4usize;
    let jobs_per_producer = 40u32;
    let tiles_per_job = 256u32;

    let pool = Arc::new(Executor::new(ExecutorConfig {
        workers,
        // Small rings keep the fork bursts spilling onto the steal and
        // overflow paths — the interesting part of the schedule.
        local_queue_capacity: 128,
        max_spawners: producers,
        ..ExecutorConfig::default()
    }));

    // XOR-folded checksum: order-independent, so any interleaving of the
    // stolen tiles must reproduce the same value.
    let rendered = Arc::new(AtomicU64::new(0));
    let checksum = Arc::new(AtomicU64::new(0));

    // Producers: one per-producer spawner each, submitting job tasks.
    // Each job task forks its tiles from *inside* the pool (local ring →
    // steal path) and returns without blocking — a worker must never
    // wait on work that only other workers can run.
    let job_handles: Vec<_> = wfqueue_sync::thread::scope(|s| {
        let joins: Vec<_> = (0..producers)
            .map(|p| {
                let mut spawner = pool.try_spawner().expect("sized for the producers");
                let (pool, rendered, checksum) = (
                    Arc::clone(&pool),
                    Arc::clone(&rendered),
                    Arc::clone(&checksum),
                );
                s.spawn(move || {
                    (0..jobs_per_producer)
                        .map(|job| {
                            let job = (p as u32) * jobs_per_producer + job;
                            let pool = Arc::clone(&pool);
                            let (rendered, checksum) =
                                (Arc::clone(&rendered), Arc::clone(&checksum));
                            spawner
                                .spawn(move || {
                                    for index in 0..tiles_per_job {
                                        let (rendered, checksum) =
                                            (Arc::clone(&rendered), Arc::clone(&checksum));
                                        // Detached: the shutdown drain, not a
                                        // blocking join, certifies completion.
                                        drop(
                                            pool.spawn(move || {
                                                let h = render(Tile { job, index });
                                                checksum.fetch_xor(h, Ordering::Relaxed);
                                                rendered.fetch_add(1, Ordering::Relaxed);
                                            })
                                            .expect("pool is open while jobs fork"),
                                        );
                                    }
                                })
                                .expect("pool is open while producers run")
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        joins
            .into_iter()
            .flat_map(|j| j.join().expect("producer thread"))
            .collect()
    });

    // A deadline task on the hashed timer wheel: snapshot the counters
    // mid-flight (while tiles are still being stolen and drained).
    let (snapshot, _key) = pool
        .spawn_after(Duration::from_millis(2), {
            let pool = Arc::clone(&pool);
            move || pool.stats()
        })
        .expect("pool is open");

    // Join the fork roots, then let shutdown drain the forked tiles.
    for h in job_handles {
        h.join().expect("job task ran");
    }
    let mid = snapshot.join().expect("timer fired");
    let stats = pool.shutdown();

    let total = u64::from(jobs_per_producer) * u64::from(tiles_per_job) * producers as u64;
    assert_eq!(rendered.load(Ordering::Relaxed), total, "every tile ran");
    assert_eq!(stats.spawned, stats.completed, "drain certificate");
    assert_eq!(
        stats.from_local + stats.from_injection + stats.from_steal,
        stats.completed,
        "completions partition by source"
    );

    println!(
        "rendered {total} tiles across {workers} workers (checksum {:#018x})",
        checksum.load(Ordering::Relaxed)
    );
    println!(
        "mid-flight (t = 2 ms): {} of {} tasks completed",
        mid.completed, stats.completed
    );
    println!(
        "schedule: {} from local rings, {} from the injection queue, {} stolen \
         ({} half-batches), {} parks",
        stats.from_local, stats.from_injection, stats.from_steal, stats.steal_batches, stats.parks
    );
    println!(
        "shutdown certified the drain: spawned == completed == {} — no tile \
         was lost to the seal",
        stats.completed
    );
}
