//! `wfqueue_executor` — a work-stealing thread-pool runtime built
//! entirely on the repo's queue stack (ROADMAP item 1, experiment E16).
//!
//! # Architecture
//!
//! Three queue tiers move `TaskRef`s (reference-counted packaged tasks):
//!
//! - **Per-worker local run queues** — one bounded [`wfqueue_ring::Ring`]
//!   per worker (wCQ-style, capacity ≤ 2¹⁵), plain FIFO with no LIFO
//!   slot: a worker pops its own ring in submission order, so the local
//!   queue inherits the ring's per-producer FIFO and starvation story
//!   instead of inventing a deque.
//! - **Global injection queue** — a [`wfqueue_shard::ShardedUnbounded`]
//!   (§3 wait-free queue per shard, reclamation on) with
//!   [`wfqueue_shard::Routing::Nearest`]: every spawner handle *places*
//!   per producer (its enqueues stay on its home shard, preserving
//!   per-spawner FIFO) while worker dequeues sweep all shards
//!   hinted-nonempty-nearest-first, so no spawner's shard can strand.
//! - **Steal-half batches** — an idle worker claims up to half of a
//!   victim ring with `dequeue_batch`, runs the first stolen task, and
//!   re-queues the rest into its own ring with the ring's all-or-nothing
//!   `try_enqueue_batch`.
//!
//! Timers live in a hashed timer wheel serviced by a dedicated timeout
//! worker that injects due tasks into the global queue; idle workers park
//! on the channel crate's lost-wakeup-free [`Signal`]
//! (listen → re-check → wait, model-checked as `steal_park_scenario` in
//! `wfqueue_sync::model::protocols`).
//!
//! # What is and is not wait-free
//!
//! Queue hops (inject, local push/pop, steal) are wait-free or lock-free
//! per their backing crates; *parking* is blocking by design — the point
//! of the Dekker handshake is that blocking never loses a wakeup, not
//! that it never blocks. See DESIGN.md §executor.
//!
//! # Shutdown certification
//!
//! [`Executor::shutdown`] seals spawns with the same seal/gauge Dekker
//! handshake the broker uses to close topics: a spawner raises the
//! `gauge` *before* reading the seal, workers read the seal *before*
//! requiring `gauge == 0`, so a spawn that slipped past the seal read is
//! always drained. Workers only exit once `sealed && gauge == 0 &&
//! spawned == completed`, and `shutdown()` asserts that final equality —
//! the "no task stranded" certificate.
//!
//! # Quickstart
//!
//! ```
//! use wfqueue_executor::Executor;
//!
//! let pool = Executor::with_workers(2);
//! let handle = pool.spawn(|| 6 * 7).expect("pool is open");
//! assert_eq!(handle.join().expect("task ran"), 42);
//!
//! let stats = pool.shutdown();
//! assert_eq!(stats.spawned, stats.completed);
//! ```
#![deny(missing_docs)]

mod task;
mod timer;

pub use task::{JoinError, JoinHandle};

use std::cell::Cell;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use wfqueue::unbounded;
use wfqueue_channel::Signal;
use wfqueue_ring::{Ring, RingHandle};
use wfqueue_shard::{ReclaimPolicy, Routing, ShardedHandle, ShardedUnbounded};
use wfqueue_sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use wfqueue_sync::thread;

use task::{Task, TaskRef};
use timer::{InsertOutcome, TimerWheel};

/// How many tasks one injection-queue sweep pulls into a worker.
const INJECTION_BATCH: usize = 32;

/// Cap on tasks claimed by one steal (before the half-of-victim rule).
const STEAL_MAX: usize = 16;

/// Process-wide pool id mint, so nested/multiple pools keep their
/// worker-context thread-locals apart.
static POOL_IDS: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// `(pool_id, worker_index)` when the current thread is a pool worker.
    static CURRENT: Cell<Option<(u64, usize)>> = const { Cell::new(None) };
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Configuration for [`Executor::new`].
///
/// ```
/// use wfqueue_executor::{Executor, ExecutorConfig};
///
/// let pool = Executor::new(ExecutorConfig {
///     workers: 3,
///     local_queue_capacity: 256,
///     ..ExecutorConfig::default()
/// });
/// let h = pool.spawn(|| "hi").expect("open");
/// assert_eq!(h.join().expect("ran"), "hi");
/// pool.shutdown();
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ExecutorConfig {
    /// Worker thread count (≥ 1). The timeout worker is extra.
    pub workers: usize,
    /// Capacity of each worker's bounded local run queue; clamped to
    /// `[2, wfqueue_ring::MAX_CAPACITY]` (the ring's 2¹⁵ ceiling).
    pub local_queue_capacity: usize,
    /// How many detached [`Spawner`] handles [`Executor::try_spawner`]
    /// may mint (each owns a routed injection-queue handle).
    pub max_spawners: usize,
    /// Reclamation period forwarded to the injection queue's
    /// [`ReclaimPolicy::EveryKRootBlocks`].
    pub reclaim_every: usize,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            workers: thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get),
            local_queue_capacity: 1024,
            max_spawners: 16,
            reclaim_every: 64,
        }
    }
}

/// A spawn was refused because the pool is sealed (shutdown started).
/// The closure is handed back so the caller can run or reroute it —
/// "either run or reported rejected, never lost".
pub struct Rejected<F>(pub F);

impl<F> std::fmt::Debug for Rejected<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Rejected(..)")
    }
}

impl<F> std::fmt::Display for Rejected<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("spawn rejected: executor is shut down")
    }
}

/// Monotonic counters describing one pool's lifetime, snapshot by
/// [`Executor::stats`] and returned by [`Executor::shutdown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct ExecutorStats {
    /// Worker thread count.
    pub workers: usize,
    /// Tasks admitted into a run queue (timer tasks count at fire time).
    pub spawned: u64,
    /// Tasks executed to completion (including panicked ones).
    pub completed: u64,
    /// Spawns refused because the pool was sealed.
    pub rejected: u64,
    /// Steals that claimed at least one task.
    pub steal_batches: u64,
    /// Total tasks moved by steals.
    pub stolen_tasks: u64,
    /// Times a worker parked on the idle signal.
    pub parks: u64,
    /// Completed tasks that came off the worker's own local ring.
    pub from_local: u64,
    /// Completed tasks that came off the global injection queue.
    pub from_injection: u64,
    /// Completed tasks first run straight off a steal batch.
    pub from_steal: u64,
    /// Timer entries that fired into the pool.
    pub timer_fired: u64,
    /// Timer entries cancelled (explicitly or by shutdown).
    pub timer_cancelled: u64,
}

impl ExecutorStats {
    /// The drain certificate: every admitted task ran.
    #[must_use]
    pub fn quiescent(&self) -> bool {
        self.spawned == self.completed
    }

    /// Whether the per-source attribution partitions `completed`
    /// (`from_local + from_injection + from_steal == completed`).
    #[must_use]
    pub fn sources_partition_completed(&self) -> bool {
        self.from_local + self.from_injection + self.from_steal == self.completed
    }
}

#[derive(Default)]
struct Counters {
    spawned: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    steal_batches: AtomicU64,
    stolen_tasks: AtomicU64,
    parks: AtomicU64,
    from_local: AtomicU64,
    from_injection: AtomicU64,
    from_steal: AtomicU64,
    timer_fired: AtomicU64,
    timer_cancelled: AtomicU64,
}

/// Where a dequeued task came from, for the source counters.
#[derive(Clone, Copy)]
enum Source {
    Local,
    Injection,
    Steal,
}

/// Pool state shared between the [`Executor`], its [`Spawner`]s and the
/// worker threads.
///
/// Field order is load-bearing: the `'static`-extended queue handles
/// (`fallback`, `locals`) are declared *before* the owning `injection` /
/// `rings` storage so they drop first — the same idiom, with the same
/// safety argument, as the channel crate's ring backend.
struct Inner {
    /// Injection-queue enqueue handle for spawns arriving from threads
    /// without their own [`Spawner`] (shared, hence the mutex).
    fallback: Mutex<ShardedHandle<'static, unbounded::Queue<TaskRef>>>,
    /// Per-worker local-ring handles, shared between worker `w`'s pops
    /// and same-worker spawns (tasks spawning tasks).
    locals: Vec<Mutex<RingHandle<'static, TaskRef>>>,
    /// Owning storage for the handles above — see the struct docs.
    injection: Arc<ShardedUnbounded<TaskRef>>,
    rings: Vec<Arc<Ring<TaskRef>>>,
    wheel: TimerWheel,
    /// Idle-worker parking lot (the lost-wakeup-free event count).
    signal: Signal,
    /// The shutdown seal: once set, no new task is admitted.
    sealed: AtomicBool,
    /// In-flight spawns between their seal check and their enqueue — the
    /// gauge half of the seal/gauge Dekker handshake (crate docs).
    gauge: AtomicUsize,
    counters: Counters,
    pool_id: u64,
    workers: usize,
}

impl Inner {
    /// Spawner half of the seal/gauge handshake. On `true` the caller
    /// *must* enqueue a task and then [`Inner::commit`].
    fn admit(&self) -> bool {
        // ORDERING: SeqCst gauge raise *before* the seal read; workers
        // read seal-then-gauge, so one side always sees the other
        // (Dekker). Same protocol as the broker's topic close.
        self.gauge.fetch_add(1, Ordering::SeqCst);
        // ORDERING: SeqCst seal read, globally after the gauge raise.
        if self.sealed.load(Ordering::SeqCst) {
            // ORDERING: SeqCst withdrawal mirroring the raise.
            self.gauge.fetch_sub(1, Ordering::SeqCst);
            // A parked worker may be waiting on `gauge == 0` to exit;
            // re-open its exit window.
            self.signal.notify();
            false
        } else {
            true
        }
    }

    /// Publishes an admitted-and-enqueued task: count it, lower the
    /// gauge, wake a worker.
    fn commit(&self) {
        // ORDERING: SeqCst spawned increment *before* the gauge drop, so
        // a worker observing `gauge == 0` sees every admitted task in
        // `spawned` and cannot exit while one is still queued.
        self.counters.spawned.fetch_add(1, Ordering::SeqCst);
        // ORDERING: SeqCst gauge drop; pairs with the workers' exit read.
        self.gauge.fetch_sub(1, Ordering::SeqCst);
        self.signal.notify();
    }

    /// Worker half of the handshake: safe to exit only when the pool is
    /// sealed, no spawn is in flight, and every admitted task has run.
    fn exit_ready(&self) -> bool {
        // ORDERING: SeqCst seal read first, then gauge, then the counter
        // pair — the reverse of the spawner's raise-then-check order, so
        // a racing spawn is either rejected or visible in gauge/spawned.
        self.sealed.load(Ordering::SeqCst)
            && self.gauge.load(Ordering::SeqCst) == 0
            && self.counters.spawned.load(Ordering::SeqCst)
                == self.counters.completed.load(Ordering::SeqCst)
    }

    /// Runs a dequeued task and publishes its completion.
    fn run_task(&self, t: &TaskRef, source: Source) {
        let counter = match source {
            Source::Local => &self.counters.from_local,
            Source::Injection => &self.counters.from_injection,
            Source::Steal => &self.counters.from_steal,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        let ran = t.run();
        debug_assert!(ran, "a queued task was already consumed elsewhere");
        // ORDERING: SeqCst completion increment — the last task's
        // completion must be visible to peers evaluating `exit_ready`.
        self.counters.completed.fetch_add(1, Ordering::SeqCst);
        // ORDERING: SeqCst seal read; only sealed pools have peers parked
        // waiting for quiescence rather than for work.
        if self.sealed.load(Ordering::SeqCst) {
            self.signal.notify();
        }
    }

    /// Routes a plain [`Executor::spawn`]: same-pool workers push their
    /// own local ring (falling back to injection when full), everyone
    /// else goes through the shared injection handle.
    fn route_spawn(&self, task: TaskRef) {
        let here = CURRENT.with(Cell::get);
        if let Some((pool, w)) = here {
            if pool == self.pool_id {
                match lock(&self.locals[w]).try_enqueue(task) {
                    Ok(()) => return,
                    Err(task) => {
                        lock(&self.fallback).enqueue(task);
                        return;
                    }
                }
            }
        }
        lock(&self.fallback).enqueue(task);
    }

    fn stats(&self) -> ExecutorStats {
        ExecutorStats {
            workers: self.workers,
            // ORDERING: SeqCst mirrors the commit-side writes — these
            // three counters form the seal/gauge drain certificate
            // (`exit_ready` compares them against `sealed`/the gauges),
            // so reads must join that single total order.
            spawned: self.counters.spawned.load(Ordering::SeqCst),
            completed: self.counters.completed.load(Ordering::SeqCst),
            rejected: self.counters.rejected.load(Ordering::SeqCst),
            steal_batches: self.counters.steal_batches.load(Ordering::Relaxed),
            stolen_tasks: self.counters.stolen_tasks.load(Ordering::Relaxed),
            parks: self.counters.parks.load(Ordering::Relaxed),
            from_local: self.counters.from_local.load(Ordering::Relaxed),
            from_injection: self.counters.from_injection.load(Ordering::Relaxed),
            from_steal: self.counters.from_steal.load(Ordering::Relaxed),
            timer_fired: self.counters.timer_fired.load(Ordering::Relaxed),
            timer_cancelled: self.counters.timer_cancelled.load(Ordering::Relaxed),
        }
    }
}

/// Cancellation handle for a [`Executor::spawn_after`] timer entry.
///
/// Dropping the key detaches the timer (it still fires); `cancel`
/// removes it, resolving its [`JoinHandle`] to [`JoinError::Cancelled`].
pub struct TimerKey {
    inner: Arc<Inner>,
    slot: usize,
    id: u64,
}

impl std::fmt::Debug for TimerKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimerKey").field("id", &self.id).finish()
    }
}

impl TimerKey {
    /// Cancels the timer if it has not fired yet. Returns whether this
    /// call won the race (fire and cancel are mutually exclusive under
    /// the wheel's bucket lock, so exactly one side claims the entry).
    pub fn cancel(self) -> bool {
        match self.inner.wheel.remove(self.slot, self.id) {
            Some(entry) => {
                (entry.cancel)();
                self.inner
                    .counters
                    .timer_cancelled
                    .fetch_add(1, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }
}

/// A detached, `Send` spawn handle with its own per-producer-routed
/// injection-queue handle — the contention-free spawn path for threads
/// outside the pool (see [`Executor::try_spawner`]).
pub struct Spawner {
    // Field order: the `'static`-extended handle drops before the Arc
    // that owns the queue it borrows (same idiom as `Inner`).
    handle: ShardedHandle<'static, unbounded::Queue<TaskRef>>,
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Spawner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Spawner")
            .field("pool_id", &self.inner.pool_id)
            .finish()
    }
}

impl Spawner {
    /// Spawns `f` through this handle's home injection shard.
    ///
    /// # Errors
    ///
    /// [`Rejected`] (returning `f`) if the pool is sealed.
    pub fn spawn<T, F>(&mut self, f: F) -> Result<JoinHandle<T>, Rejected<F>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        if !self.inner.admit() {
            self.inner.counters.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(Rejected(f));
        }
        let (task, handle, _cancel) = Task::package(f);
        self.handle.enqueue(task);
        self.inner.commit();
        Ok(handle)
    }
}

/// The work-stealing thread pool. See the crate docs for the design.
pub struct Executor {
    inner: Arc<Inner>,
    threads: Mutex<Vec<thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("pool_id", &self.inner.pool_id)
            .field("workers", &self.inner.workers)
            .finish()
    }
}

impl Executor {
    /// Builds and starts a pool with `config.workers` workers plus one
    /// timeout worker.
    ///
    /// # Panics
    ///
    /// Panics if `config.workers` is zero or a worker thread cannot be
    /// spawned.
    #[must_use]
    pub fn new(config: ExecutorConfig) -> Self {
        assert!(config.workers > 0, "executor needs at least one worker");
        let workers = config.workers;
        let capacity = config
            .local_queue_capacity
            .clamp(2, wfqueue_ring::MAX_CAPACITY);
        let rings: Vec<Arc<Ring<TaskRef>>> = (0..workers)
            .map(|_| Arc::new(Ring::new(capacity, workers)))
            .collect();
        let injection: Arc<ShardedUnbounded<TaskRef>> = Arc::new(ShardedUnbounded::with_reclaim(
            workers,
            workers + config.max_spawners + 2,
            Routing::Nearest,
            ReclaimPolicy::EveryKRootBlocks(config.reclaim_every.max(1)),
        ));
        let locals = rings
            .iter()
            .map(|ring| {
                // SAFETY: the handle borrows the `Ring` owned by the
                // `Arc` stored in the same `Inner`; `locals` is declared
                // before `rings`, so the handle drops first and never
                // outlives the ring (struct-docs drop-order idiom).
                let ring: &'static Ring<TaskRef> = unsafe { &*std::ptr::from_ref(&**ring) };
                Mutex::new(ring.register().expect("ring sized for its owner"))
            })
            .collect();
        // SAFETY: as above — `fallback` borrows the queue owned by the
        // `injection` Arc in the same `Inner` and is declared before it.
        let inj: &'static ShardedUnbounded<TaskRef> = unsafe { &*std::ptr::from_ref(&*injection) };
        let fallback = Mutex::new(inj.try_handle().expect("injection sized for the pool"));
        let inner = Arc::new(Inner {
            fallback,
            locals,
            injection,
            rings,
            wheel: TimerWheel::new(),
            signal: Signal::default(),
            sealed: AtomicBool::new(false),
            gauge: AtomicUsize::new(0),
            counters: Counters::default(),
            pool_id: POOL_IDS.fetch_add(1, Ordering::Relaxed),
            workers,
        });
        let mut threads = Vec::with_capacity(workers + 1);
        for w in 0..workers {
            let inner = Arc::clone(&inner);
            threads.push(
                thread::Builder::new()
                    .name(format!("wfq-exec-{}-w{w}", inner.pool_id))
                    .spawn(move || worker_loop(&inner, w))
                    .expect("spawn worker thread"),
            );
        }
        {
            let inner = Arc::clone(&inner);
            threads.push(
                thread::Builder::new()
                    .name(format!("wfq-exec-{}-timer", inner.pool_id))
                    .spawn(move || timer_loop(&inner))
                    .expect("spawn timeout worker"),
            );
        }
        Executor {
            inner,
            threads: Mutex::new(threads),
        }
    }

    /// [`Executor::new`] with `workers` workers and default settings.
    #[must_use]
    pub fn with_workers(workers: usize) -> Self {
        Executor::new(ExecutorConfig {
            workers,
            ..ExecutorConfig::default()
        })
    }

    /// Spawns `f` onto the pool and returns its [`JoinHandle`].
    ///
    /// Called from a pool worker, the task goes straight into the
    /// worker's local ring (injection fallback when full); otherwise it
    /// takes the shared injection handle. An `Ok` return means the task
    /// *will* run, even if shutdown starts immediately afterwards.
    ///
    /// # Errors
    ///
    /// [`Rejected`] (returning `f`) if the pool is sealed.
    pub fn spawn<T, F>(&self, f: F) -> Result<JoinHandle<T>, Rejected<F>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        if !self.inner.admit() {
            self.inner.counters.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(Rejected(f));
        }
        let (task, handle, _cancel) = Task::package(f);
        self.inner.route_spawn(task);
        self.inner.commit();
        Ok(handle)
    }

    /// Mints a detached [`Spawner`] with its own per-producer injection
    /// shard placement, or `None` once `max_spawners` are outstanding.
    #[must_use]
    pub fn try_spawner(&self) -> Option<Spawner> {
        // SAFETY: the spawner's handle borrows the queue owned by the
        // `Arc` cloned into the same `Spawner`; the handle field is
        // declared first, so it drops before the Arc (struct-docs idiom).
        let inj: &'static ShardedUnbounded<TaskRef> =
            unsafe { &*std::ptr::from_ref(&*self.inner.injection) };
        let handle = inj.try_handle()?;
        Some(Spawner {
            handle,
            inner: Arc::clone(&self.inner),
        })
    }

    /// Schedules `f` to be spawned after `delay`. The [`TimerKey`] can
    /// cancel it before it fires; shutdown cancels all pending timers
    /// (their handles resolve to [`JoinError::Cancelled`] — never lost).
    ///
    /// # Errors
    ///
    /// [`Rejected`] (returning `f`) if the pool is already sealed. A
    /// seal racing the registration instead yields `Ok` with the handle
    /// resolving to [`JoinError::Cancelled`].
    pub fn spawn_after<T, F>(
        &self,
        delay: Duration,
        f: F,
    ) -> Result<(JoinHandle<T>, TimerKey), Rejected<F>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        // ORDERING: SeqCst pre-check so an already-sealed pool can hand
        // `f` back; the authoritative check is inside `insert`'s gauge.
        if self.inner.sealed.load(Ordering::SeqCst) {
            self.inner.counters.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(Rejected(f));
        }
        let (task, handle, cancel) = Task::package(f);
        let deadline = Instant::now() + delay;
        match self
            .inner
            .wheel
            .insert(deadline, task, cancel, &self.inner.sealed)
        {
            InsertOutcome::Inserted { slot, id } => {
                self.inner.wheel.signal.notify();
                Ok((
                    handle,
                    TimerKey {
                        inner: Arc::clone(&self.inner),
                        slot,
                        id,
                    },
                ))
            }
            InsertOutcome::Sealed { task, cancel } => {
                drop(task);
                cancel();
                self.inner
                    .counters
                    .timer_cancelled
                    .fetch_add(1, Ordering::Relaxed);
                // A dead key: id 0 is never minted, so `cancel` is a
                // no-op returning false.
                Ok((
                    handle,
                    TimerKey {
                        inner: Arc::clone(&self.inner),
                        slot: 0,
                        id: 0,
                    },
                ))
            }
        }
    }

    /// Blocks the calling thread for `duration` using the timer wheel
    /// (a `spawn_after(duration, || ())` joined in place).
    ///
    /// # Errors
    ///
    /// [`JoinError::Cancelled`] if the pool shuts down before the timer
    /// fires.
    pub fn sleep(&self, duration: Duration) -> Result<(), JoinError> {
        match self.spawn_after(duration, || ()) {
            Ok((handle, _key)) => handle.join(),
            Err(Rejected(_)) => Err(JoinError::Cancelled),
        }
    }

    /// Snapshot of the pool's counters.
    #[must_use]
    pub fn stats(&self) -> ExecutorStats {
        self.inner.stats()
    }

    /// Seals the pool, drains every admitted task, cancels pending
    /// timers, joins all threads, and returns the final counters.
    ///
    /// Idempotent and safe to race: every caller blocks until the drain
    /// finishes (joins happen under the thread-list lock).
    ///
    /// # Panics
    ///
    /// Panics if called from inside one of this pool's own tasks (the
    /// worker would join itself), or if the drain certificate
    /// `spawned == completed` fails — that is a scheduler bug.
    pub fn shutdown(&self) -> ExecutorStats {
        let here = CURRENT.with(Cell::get);
        assert!(
            !matches!(here, Some((pool, _)) if pool == self.inner.pool_id),
            "shutdown() called from inside one of the pool's own tasks"
        );
        // ORDERING: SeqCst seal store — the close half of the seal/gauge
        // handshake; every later admit() observes it.
        self.inner.sealed.store(true, Ordering::SeqCst);
        self.inner.signal.notify();
        self.inner.wheel.signal.notify();
        let mut guard = lock(&self.threads);
        for t in guard.drain(..) {
            t.join().expect("pool thread panicked");
        }
        drop(guard);
        let stats = self.inner.stats();
        assert_eq!(
            stats.spawned, stats.completed,
            "shutdown drain certificate violated: {} spawned vs {} completed",
            stats.spawned, stats.completed
        );
        stats
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        let here = CURRENT.with(Cell::get);
        if matches!(here, Some((pool, _)) if pool == self.inner.pool_id) {
            // Dropped inside one of our own tasks: joining would
            // deadlock. Seal and detach; workers drain and exit on their
            // own.
            // ORDERING: SeqCst — the seal is the flag side of the
            // admit/commit Dekker handshake (see `Inner::admit`).
            self.inner.sealed.store(true, Ordering::SeqCst);
            self.inner.signal.notify();
            self.inner.wheel.signal.notify();
            lock(&self.threads).clear();
            return;
        }
        if !lock(&self.threads).is_empty() {
            self.shutdown();
        }
    }
}

/// One worker thread: drain local → injection → steal, then park.
fn worker_loop(inner: &Arc<Inner>, w: usize) {
    CURRENT.with(|c| c.set(Some((inner.pool_id, w))));
    let mut inj = inner
        .injection
        .try_handle()
        .expect("injection sized for the pool");
    // Steal handles into every other worker's ring (rings are sized for
    // owner + `workers - 1` stealers).
    let mut steals: Vec<(usize, RingHandle<'_, TaskRef>)> = inner
        .rings
        .iter()
        .enumerate()
        .filter(|&(v, _)| v != w)
        .map(|(v, ring)| (v, ring.register().expect("ring sized for stealers")))
        .collect();
    let mut rotation = w; // start victims offset per worker
    loop {
        if let Some((task, source)) = find_task(inner, w, &mut inj, &mut steals, &mut rotation) {
            inner.run_task(&task, source);
            continue;
        }
        if inner.exit_ready() {
            break;
        }
        let key = inner.signal.listen();
        // Post-listen re-check: a task enqueued (or the last completion
        // published) before our listen would otherwise be a lost wakeup.
        if let Some((task, source)) = find_task(inner, w, &mut inj, &mut steals, &mut rotation) {
            inner.signal.cancel(key);
            inner.run_task(&task, source);
            continue;
        }
        if inner.exit_ready() {
            inner.signal.cancel(key);
            break;
        }
        inner.counters.parks.fetch_add(1, Ordering::Relaxed);
        inner.signal.wait(key);
    }
    // Cascade the exit wakeup so sibling workers parked before the final
    // notify also re-evaluate `exit_ready`.
    inner.signal.notify();
    CURRENT.with(|c| c.set(None));
}

/// One dequeue attempt across the three tiers, in cheapness order.
fn find_task(
    inner: &Inner,
    w: usize,
    inj: &mut ShardedHandle<'_, unbounded::Queue<TaskRef>>,
    steals: &mut [(usize, RingHandle<'_, TaskRef>)],
    rotation: &mut usize,
) -> Option<(TaskRef, Source)> {
    wfqueue_metrics::adversary_yield();
    // Tier 1: own local ring.
    if let Some(task) = lock(&inner.locals[w]).dequeue() {
        return Some((task, Source::Local));
    }
    // Tier 2: sweep the injection queue; run the first task now and move
    // the rest of the batch into our local ring.
    let batch = inj.dequeue_batch(INJECTION_BATCH);
    let mut tasks = batch.into_iter().flatten();
    if let Some(first) = tasks.next() {
        push_local(inner, w, inj, tasks.collect());
        return Some((first, Source::Injection));
    }
    // Tier 3: steal half a victim's ring, rotating the starting victim.
    let n = steals.len();
    for i in 0..n {
        let (victim, handle) = &mut steals[(*rotation + i) % n];
        let avail = inner.rings[*victim].approx_len();
        if avail == 0 {
            continue;
        }
        let want = avail.div_ceil(2).min(STEAL_MAX);
        let stolen: Vec<TaskRef> = handle.dequeue_batch(want).into_iter().flatten().collect();
        if stolen.is_empty() {
            continue;
        }
        *rotation = (*rotation + i + 1) % n;
        inner.counters.steal_batches.fetch_add(1, Ordering::Relaxed);
        inner
            .counters
            .stolen_tasks
            .fetch_add(stolen.len() as u64, Ordering::Relaxed);
        let mut stolen = stolen.into_iter();
        let first = stolen.next().expect("non-empty batch");
        push_local(inner, w, inj, stolen.collect());
        return Some((first, Source::Steal));
    }
    None
}

/// Moves a claimed batch remainder into worker `w`'s local ring — the
/// ring's all-or-nothing batch first, then singles, then the injection
/// queue as overflow of last resort (counters unchanged: these tasks are
/// already `spawned`).
fn push_local(
    inner: &Inner,
    w: usize,
    inj: &mut ShardedHandle<'_, unbounded::Queue<TaskRef>>,
    rest: Vec<TaskRef>,
) {
    if rest.is_empty() {
        return;
    }
    let mut local = lock(&inner.locals[w]);
    match local.try_enqueue_batch(rest) {
        Ok(()) => {}
        Err(rest) => {
            for task in rest {
                if let Err(task) = local.try_enqueue(task) {
                    inj.enqueue(task);
                }
            }
        }
    }
    drop(local);
    // The batch may exceed what this worker drains promptly; let a peer
    // know there is work to steal.
    inner.signal.notify();
}

/// The timeout worker: fires due timer entries into the injection queue
/// in deadline order; on seal, waits out in-flight inserts and cancels
/// every remaining entry (wheel module docs describe the handshake).
fn timer_loop(inner: &Arc<Inner>) {
    let mut inj = inner
        .injection
        .try_handle()
        .expect("injection sized for the timeout worker");
    loop {
        // ORDERING: SeqCst seal read before the gauge wait + final drain
        // — the worker half of the wheel's insert handshake.
        if inner.sealed.load(Ordering::SeqCst) {
            break;
        }
        let now = Instant::now();
        let due = inner.wheel.take_due(now);
        if !due.is_empty() {
            for entry in due {
                if inner.admit() {
                    inj.enqueue(entry.task);
                    inner.counters.timer_fired.fetch_add(1, Ordering::Relaxed);
                    inner.commit();
                } else {
                    (entry.cancel)();
                    inner
                        .counters
                        .timer_cancelled
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
            continue;
        }
        let key = inner.wheel.signal.listen();
        // Post-listen re-check: an insert (or the seal) that landed
        // before our listen must not be slept through.
        // ORDERING: SeqCst pairs with the SeqCst seal store — the
        // Dekker re-check must not be reordered before `listen()`.
        if inner.sealed.load(Ordering::SeqCst) {
            inner.wheel.signal.cancel(key);
            break;
        }
        match inner.wheel.next_deadline() {
            Some(deadline) if deadline <= Instant::now() => {
                inner.wheel.signal.cancel(key);
            }
            Some(deadline) => {
                inner.wheel.signal.wait_deadline(key, deadline);
            }
            None => inner.wheel.signal.wait(key),
        }
    }
    inner.wheel.wait_inserts_drained();
    for entry in inner.wheel.drain_all() {
        (entry.cancel)();
        inner
            .counters
            .timer_cancelled
            .fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawn_join_round_trip() {
        let pool = Executor::with_workers(2);
        let h = pool.spawn(|| 1 + 1).expect("open");
        assert_eq!(h.join().expect("ran"), 2);
        let stats = pool.shutdown();
        assert!(stats.quiescent());
        assert!(stats.sources_partition_completed());
    }

    #[test]
    fn spawn_after_fires_and_cancels() {
        let pool = Executor::with_workers(1);
        let (fast, _k) = pool
            .spawn_after(Duration::from_millis(5), || 7)
            .expect("open");
        let (never, key) = pool
            .spawn_after(Duration::from_secs(3600), || 8)
            .expect("open");
        assert_eq!(fast.join().expect("fired"), 7);
        assert!(key.cancel());
        assert!(never.join().expect_err("cancelled").is_cancelled());
        let stats = pool.shutdown();
        assert_eq!(stats.timer_fired, 1);
        assert_eq!(stats.timer_cancelled, 1);
    }

    #[test]
    fn rejected_after_shutdown_returns_closure() {
        let pool = Executor::with_workers(1);
        pool.shutdown();
        let Err(Rejected(f)) = pool.spawn(|| 41 + 1) else {
            panic!("sealed pool accepted a spawn");
        };
        assert_eq!(f(), 42);
        assert_eq!(pool.stats().rejected, 1);
    }

    #[test]
    fn worker_spawned_tasks_run() {
        let pool = Arc::new(Executor::with_workers(2));
        let p2 = Arc::clone(&pool);
        let outer = pool
            .spawn(move || {
                let h = p2.spawn(|| 10u64).expect("open");
                h.join().expect("inner ran") + 1
            })
            .expect("open");
        assert_eq!(outer.join().expect("outer ran"), 11);
    }

    #[test]
    fn panicking_task_reports_and_pool_survives() {
        let pool = Executor::with_workers(1);
        let h = pool.spawn(|| panic!("boom")).expect("open");
        let err = h.join().expect_err("panicked");
        assert!(matches!(err, JoinError::Panicked(_)));
        let ok = pool.spawn(|| 5).expect("pool survived the panic");
        assert_eq!(ok.join().expect("ran"), 5);
        let stats = pool.shutdown();
        assert!(stats.quiescent());
    }
}
