//! The execution engine behind [`super::explore`]: virtual threads, the
//! choice tape, the DFS over schedules, and the modeled memory system.
//!
//! # How a schedule runs
//!
//! Each schedule spawns one OS thread per virtual thread, but a shared
//! `turn` token (guarded by one mutex/condvar pair) lets exactly one of
//! them execute at a time. Every facade operation is a *scheduling
//! point*: the running thread consults the choice tape to decide who runs
//! next, performs its operation against the modeled memory under the
//! state lock, and either continues or parks itself and wakes the chosen
//! successor. An execution is therefore a deterministic function of its
//! tape, which is what makes exhaustive enumeration and failure replay
//! possible.
//!
//! # How schedules are enumerated
//!
//! The tape records every point where more than one continuation existed
//! (which thread to run, which store a weakly-ordered load observes) as
//! `(options, picked)`. After a schedule completes, the controller bumps
//! the deepest `picked` that still has unexplored options and truncates
//! the rest — a depth-first walk of the schedule tree. Scheduling choices
//! list "continue the current thread" first, so the DFS visits
//! few-preemption schedules before exotic ones, and a preemption *bound*
//! prunes involuntary switches beyond `Options::preemption_bound`
//! (voluntary ones — blocking, finishing — are always free). A seeded
//! random phase then samples schedules outside the bounded space.
//!
//! # The memory model
//!
//! See the [`super`] module docs for the semantics; the representation
//! here is: per location a vector of store messages (value, optional
//! release clock, writer event), per thread a vector clock, a
//! pending-acquire clock (for acquire fences), an optional release-fence
//! clock, and per-location coherence floors; plus one global SC clock.

use std::collections::HashMap;
use std::panic::{catch_unwind, panic_any, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

use crate::atomic::Ordering;

use super::{Handle, CURRENT};

/// Sentinel panic payload used to unwind virtual threads when a schedule
/// aborts (failure found elsewhere); never escapes the model.
struct Abort;

// ---------------------------------------------------------------------------
// Vector clocks
// ---------------------------------------------------------------------------

/// A vector clock over virtual-thread ids.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(super) struct VClock(Vec<u32>);

impl VClock {
    fn get(&self, tid: usize) -> u32 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    fn set(&mut self, tid: usize, v: u32) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] = v;
    }

    fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (s, o) in self.0.iter_mut().zip(other.0.iter()) {
            *s = (*s).max(*o);
        }
    }

    /// Does this clock know about event `seq` of thread `tid`?
    fn contains(&self, tid: usize, seq: u32) -> bool {
        self.get(tid) >= seq
    }
}

fn join_opt(a: Option<&VClock>, b: Option<&VClock>) -> Option<VClock> {
    match (a, b) {
        (None, None) => None,
        (Some(x), None) => Some(x.clone()),
        (None, Some(y)) => Some(y.clone()),
        (Some(x), Some(y)) => {
            let mut c = x.clone();
            c.join(y);
            Some(c)
        }
    }
}

// ---------------------------------------------------------------------------
// Modeled memory
// ---------------------------------------------------------------------------

/// One store in a location's modification order.
#[derive(Clone, Debug)]
struct StoreMsg {
    val: u64,
    /// The release clock carried by this store (`None` for a relaxed store
    /// with no preceding release fence): what an acquire load of this
    /// message learns.
    rel: Option<VClock>,
    /// The writer's `(tid, seq)` event id; `None` for the initial value,
    /// which everybody knows.
    event: Option<(usize, u32)>,
}

/// One atomic location's modeled history.
struct Location {
    /// Small dense id used in traces (`L0`, `L1`, …), assigned in first-
    /// touch order, which is deterministic per schedule.
    lid: usize,
    stores: Vec<StoreMsg>,
}

// ---------------------------------------------------------------------------
// Threads and scheduling state
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BlockKind {
    /// Waiting to acquire the modeled mutex registered at this address.
    Mutex(usize),
    /// Waiting on the modeled condvar registered at this address.
    Condvar(usize),
    /// Waiting for the virtual thread with this id to finish.
    Join(usize),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Status {
    /// Runnable (or currently running — the `turn` token distinguishes).
    Ready,
    Blocked(BlockKind),
    Finished,
}

struct VThread {
    status: Status,
    clock: VClock,
    /// Clocks of every message read so far by *any* load (for acquire
    /// fences, which upgrade past relaxed loads).
    pending_acquire: VClock,
    /// Clock at the last release fence, carried by subsequent relaxed
    /// stores.
    release_fence: Option<VClock>,
    /// Per-location coherence floor: the smallest modification-order index
    /// this thread may still legally read.
    floors: HashMap<usize, usize>,
}

impl VThread {
    fn new(clock: VClock) -> Self {
        VThread {
            status: Status::Ready,
            clock,
            pending_acquire: VClock::default(),
            release_fence: None,
            floors: HashMap::new(),
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Turn {
    Controller,
    Thread(usize),
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Mode {
    /// Replay the tape, extending it with first choices; used by the
    /// exhaustive DFS.
    Dfs,
    /// Ignore the tape and pick uniformly with the seeded generator.
    Random,
}

/// One recorded decision: `options` continuations existed, `picked` was
/// taken.
#[derive(Clone, Copy, Debug)]
struct Choice {
    options: usize,
    picked: usize,
}

/// A modeled mutex's bookkeeping (see [`super::Mutex`]).
#[derive(Default)]
struct MutexState {
    held_by: Option<usize>,
    /// Clock of the last unlock: what the next lock acquires.
    rel_clock: VClock,
}

/// A modeled condvar's bookkeeping (see [`super::Condvar`]).
#[derive(Default)]
struct CvState {
    waiters: Vec<usize>,
}

struct ExecState {
    mode: Mode,
    turn: Turn,
    threads: Vec<VThread>,
    mem: HashMap<usize, Location>,
    next_lid: usize,
    sc_clock: VClock,
    mutexes: HashMap<usize, MutexState>,
    cvs: HashMap<usize, CvState>,
    tape: Vec<Choice>,
    pos: usize,
    preemptions: usize,
    bound: usize,
    steps: usize,
    max_steps: usize,
    max_threads: usize,
    rng: u64,
    oplog: Vec<String>,
    failure: Option<String>,
    abort: bool,
    os_handles: Vec<std::thread::JoinHandle<()>>,
}

/// The state shared between the controller and every virtual thread of
/// one [`super::explore`] call.
pub(crate) struct ExecShared {
    state: Mutex<ExecState>,
    cv: Condvar,
}

fn lock(shared: &ExecShared) -> MutexGuard<'_, ExecState> {
    shared.state.lock().unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// Public configuration and results
// ---------------------------------------------------------------------------

/// Tuning knobs for [`super::explore`].
#[derive(Clone, Copy, Debug)]
pub struct Options {
    /// Maximum involuntary context switches per schedule during the
    /// exhaustive phase. Blocking and finishing are always free; the DFS
    /// covers *every* schedule within this budget.
    pub preemption_bound: usize,
    /// Abort the exhaustive phase (reporting `complete: false`) after
    /// this many schedules.
    pub max_schedules: usize,
    /// Seeded random schedules explored after the exhaustive phase,
    /// unconstrained by the preemption bound.
    pub random_schedules: usize,
    /// Seed for the random phase.
    pub seed: u64,
    /// Per-schedule budget of facade operations; exceeding it is reported
    /// as a livelock.
    pub max_steps: usize,
    /// Maximum live virtual threads per schedule.
    pub max_threads: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            preemption_bound: 2,
            max_schedules: 2_000_000,
            random_schedules: 128,
            seed: 0x5eed_c0ffee,
            max_steps: 50_000,
            max_threads: 8,
        }
    }
}

impl Options {
    /// Reads `MODEL_PREEMPTION_BOUND` from the environment (the weekly
    /// stress job raises it) on top of the defaults.
    #[must_use]
    pub fn from_env() -> Self {
        let mut o = Options::default();
        if let Some(b) = std::env::var("MODEL_PREEMPTION_BOUND")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
        {
            o.preemption_bound = b;
        }
        o
    }
}

/// What [`super::explore`] explored.
#[derive(Clone, Copy, Debug)]
pub struct Report {
    /// Schedules visited by the exhaustive (preemption-bounded) phase.
    pub exhaustive_schedules: usize,
    /// Schedules visited by the seeded random phase.
    pub random_schedules: usize,
    /// Whether the exhaustive phase enumerated its whole space (`false`
    /// means `max_schedules` cut it short).
    pub complete: bool,
}

/// A bug found by the model: the failure message plus the trace of the
/// offending schedule.
#[derive(Debug)]
pub struct Failure {
    /// Human-readable failure: what went wrong, the per-operation trace
    /// of the failing schedule, and the choice tape that replays it.
    pub message: String,
    /// Schedules explored before the failure surfaced.
    pub schedules_explored: usize,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "model checker found a bug after {} schedule(s):\n{}",
            self.schedules_explored, self.message
        )
    }
}

impl std::error::Error for Failure {}

// ---------------------------------------------------------------------------
// Failure plumbing
// ---------------------------------------------------------------------------

fn render_failure(g: &ExecState, msg: &str) -> String {
    let tape: Vec<String> = g
        .tape
        .iter()
        .map(|c| format!("{}/{}", c.picked, c.options))
        .collect();
    format!(
        "{msg}\n--- schedule trace ({} ops) ---\n{}\n--- choice tape (picked/options) ---\n[{}]",
        g.oplog.len(),
        g.oplog.join("\n"),
        tape.join(", ")
    )
}

/// Records a failure (first one wins), aborts the schedule, and hands the
/// turn back to the controller.
fn record_failure(shared: &ExecShared, g: &mut ExecState, msg: &str) {
    if g.failure.is_none() {
        g.failure = Some(render_failure(g, msg));
    }
    g.abort = true;
    g.turn = Turn::Controller;
    shared.cv.notify_all();
}

/// Records a failure and unwinds the calling virtual thread.
fn fail(shared: &ExecShared, g: &mut ExecState, msg: &str) -> ! {
    record_failure(shared, g, msg);
    panic_any(Abort);
}

// ---------------------------------------------------------------------------
// Choice + scheduling primitives (called with the state lock held)
// ---------------------------------------------------------------------------

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Resolves an `options`-way nondeterministic choice against the tape
/// (DFS mode) or the seeded generator (random mode).
fn choose(shared: &ExecShared, g: &mut ExecState, options: usize) -> usize {
    debug_assert!(options >= 2);
    match g.mode {
        Mode::Dfs => {
            if g.pos < g.tape.len() {
                let c = g.tape[g.pos];
                if c.options != options {
                    fail(
                        shared,
                        g,
                        &format!(
                            "nondeterministic model program: replay diverged at choice {} \
                             ({} options recorded, {} now) — model code must not depend on \
                             real time, addresses, or OS randomness",
                            g.pos, c.options, options
                        ),
                    );
                }
                g.pos += 1;
                c.picked
            } else {
                g.tape.push(Choice { options, picked: 0 });
                g.pos += 1;
                0
            }
        }
        Mode::Random => {
            let r = splitmix64(&mut g.rng);
            (r >> 33) as usize % options
        }
    }
}

fn enabled_others(g: &ExecState, me: usize) -> Vec<usize> {
    (0..g.threads.len())
        .filter(|&t| t != me && g.threads[t].status == Status::Ready)
        .collect()
}

/// Parks the calling thread until the turn token names it again. Returns
/// `None` if the schedule aborted while parked (the caller unwinds or,
/// if already unwinding, bails quietly).
fn wait_for_turn<'a>(
    shared: &'a ExecShared,
    mut g: MutexGuard<'a, ExecState>,
    tid: usize,
) -> Option<MutexGuard<'a, ExecState>> {
    loop {
        if g.abort {
            if std::thread::panicking() {
                return None;
            }
            drop(g);
            panic_any(Abort);
        }
        if g.turn == Turn::Thread(tid) {
            return Some(g);
        }
        g = shared.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
    }
}

/// The scheduling point executed at every facade operation: consumes one
/// step of budget, consults the tape about who runs next, and — if the
/// answer is somebody else — counts the preemption, wakes them, and parks
/// until the turn comes back. Returns `None` only when the schedule is
/// aborting and the caller is already unwinding.
fn schedule_point<'a>(shared: &'a ExecShared, tid: usize) -> Option<MutexGuard<'a, ExecState>> {
    let mut g = lock(shared);
    if g.abort {
        if std::thread::panicking() {
            return None;
        }
        drop(g);
        panic_any(Abort);
    }
    g.steps += 1;
    if g.steps > g.max_steps {
        let max = g.max_steps;
        fail(
            shared,
            &mut g,
            &format!(
                "step budget exhausted ({max} facade operations in one schedule): \
                 livelock, or raise Options::max_steps"
            ),
        );
    }
    let mut cands = vec![tid];
    cands.extend(enabled_others(&g, tid));
    if g.preemptions >= g.bound && g.mode == Mode::Dfs {
        cands.truncate(1);
    }
    let picked = if cands.len() > 1 {
        choose(shared, &mut g, cands.len())
    } else {
        0
    };
    let next = cands[picked];
    if next != tid {
        g.preemptions += 1;
        g.turn = Turn::Thread(next);
        shared.cv.notify_all();
        g = wait_for_turn(shared, g, tid)?;
    }
    Some(g)
}

/// Blocks the calling thread (mutex contention / condvar wait / join):
/// marks it non-runnable, picks a successor, and parks until some waker
/// marks it `Ready` *and* the schedule hands it the turn. A block with no
/// runnable successor is the model's deadlock — for the protocols under
/// test, a lost wakeup.
fn block_until_runnable<'a>(
    shared: &'a ExecShared,
    mut g: MutexGuard<'a, ExecState>,
    tid: usize,
    kind: BlockKind,
) -> Option<MutexGuard<'a, ExecState>> {
    g.threads[tid].status = Status::Blocked(kind);
    g.oplog.push(format!("T{tid} blocks on {kind:?}"));
    let cands = enabled_others(&g, tid);
    if cands.is_empty() {
        let states: Vec<String> = g
            .threads
            .iter()
            .enumerate()
            .map(|(t, th)| format!("T{t}:{:?}", th.status))
            .collect();
        fail(
            shared,
            &mut g,
            &format!(
                "deadlock: every live thread is blocked (lost wakeup?) — [{}]",
                states.join(", ")
            ),
        );
    }
    let picked = if cands.len() > 1 {
        choose(shared, &mut g, cands.len())
    } else {
        0
    };
    g.turn = Turn::Thread(cands[picked]);
    shared.cv.notify_all();
    wait_for_turn(shared, g, tid)
}

/// Marks the calling thread finished, wakes its joiners, and passes the
/// turn on (to a chosen runnable thread, or back to the controller when
/// everyone is done).
fn finish_thread(shared: &ExecShared, g: &mut ExecState, tid: usize) {
    g.threads[tid].status = Status::Finished;
    g.oplog.push(format!("T{tid} finishes"));
    for t in 0..g.threads.len() {
        if g.threads[t].status == Status::Blocked(BlockKind::Join(tid)) {
            g.threads[t].status = Status::Ready;
        }
    }
    let cands = enabled_others(g, tid);
    if cands.is_empty() {
        if g.threads.iter().all(|t| t.status == Status::Finished) {
            g.turn = Turn::Controller;
        } else {
            record_failure(
                shared,
                g,
                "deadlock: a thread finished while every remaining thread is blocked \
                 (lost wakeup?)",
            );
        }
    } else {
        let picked = if cands.len() > 1 {
            choose(shared, g, cands.len())
        } else {
            0
        };
        g.turn = Turn::Thread(cands[picked]);
    }
    shared.cv.notify_all();
}

// ---------------------------------------------------------------------------
// Memory operations
// ---------------------------------------------------------------------------

fn ensure_location(g: &mut ExecState, addr: usize, init: u64) -> usize {
    if let Some(loc) = g.mem.get(&addr) {
        return loc.lid;
    }
    let lid = g.next_lid;
    g.next_lid += 1;
    g.mem.insert(
        addr,
        Location {
            lid,
            stores: vec![StoreMsg {
                val: init,
                // The initial value is known to (and synchronized with)
                // everybody: it existed before the threads did.
                rel: Some(VClock::default()),
                event: None,
            }],
        },
    );
    lid
}

fn is_acquire(order: Ordering) -> bool {
    matches!(
        order,
        Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
    )
}

fn is_release(order: Ordering) -> bool {
    matches!(
        order,
        Ordering::Release | Ordering::AcqRel | Ordering::SeqCst
    )
}

/// The smallest modification-order index `tid` may read at `addr`:
/// its coherence floor, raised by every store it (transitively) knows
/// happened.
fn read_floor(g: &ExecState, tid: usize, addr: usize) -> usize {
    let th = &g.threads[tid];
    let mut floor = th.floors.get(&addr).copied().unwrap_or(0);
    let stores = &g.mem[&addr].stores;
    for (j, s) in stores.iter().enumerate().skip(floor + 1) {
        if let Some((wtid, seq)) = s.event {
            if th.clock.contains(wtid, seq) {
                floor = j;
            }
        }
    }
    floor
}

/// Applies the read side of `order` for message `idx` at `addr`.
fn apply_read_effects(g: &mut ExecState, tid: usize, addr: usize, idx: usize, order: Ordering) {
    let rel = g.mem[&addr].stores[idx].rel.clone();
    let th = &mut g.threads[tid];
    if let Some(rel) = rel {
        th.pending_acquire.join(&rel);
        if is_acquire(order) {
            th.clock.join(&rel);
        }
    }
    th.floors.insert(addr, idx);
}

/// Appends a store message for `tid` at `addr` and returns its index.
fn apply_write(
    g: &mut ExecState,
    tid: usize,
    addr: usize,
    val: u64,
    order: Ordering,
    continue_rel: Option<VClock>,
) -> usize {
    let seq = g.threads[tid].clock.get(tid) + 1;
    g.threads[tid].clock.set(tid, seq);
    let own_rel = if is_release(order) {
        Some(g.threads[tid].clock.clone())
    } else {
        g.threads[tid].release_fence.clone()
    };
    let rel = join_opt(continue_rel.as_ref(), own_rel.as_ref());
    let msg = StoreMsg {
        val,
        rel,
        event: Some((tid, seq)),
    };
    let stores = &mut g.mem.get_mut(&addr).expect("location registered").stores;
    stores.push(msg);
    let idx = stores.len() - 1;
    g.threads[tid].floors.insert(addr, idx);
    idx
}

fn sc_pre(g: &mut ExecState, tid: usize, order: Ordering) {
    if order == Ordering::SeqCst {
        let sc = g.sc_clock.clone();
        g.threads[tid].clock.join(&sc);
    }
}

/// SC *writes* (stores, RMWs, fences) publish into the global SC clock;
/// SC loads only acquire from it (publishing on loads would be strictly
/// stronger than C11 and would hide real bugs like a dropped SC fence).
fn sc_post_write(g: &mut ExecState, tid: usize, order: Ordering) {
    if order == Ordering::SeqCst {
        let clock = g.threads[tid].clock.clone();
        g.sc_clock.join(&clock);
    }
}

pub(super) fn op_load(h: &Handle, addr: usize, init: u64, order: Ordering) -> u64 {
    let Some(mut g) = schedule_point(&h.shared, h.tid) else {
        return init;
    };
    let g = &mut *g;
    let lid = ensure_location(g, addr, init);
    sc_pre(g, h.tid, order);
    let floor = read_floor(g, h.tid, addr);
    let n = g.mem[&addr].stores.len();
    let span = n - floor;
    let idx = if span > 1 {
        floor + choose(&h.shared, g, span)
    } else {
        floor
    };
    let val = g.mem[&addr].stores[idx].val;
    apply_read_effects(g, h.tid, addr, idx, order);
    let stale = if idx + 1 < n { " (stale)" } else { "" };
    g.oplog.push(format!(
        "T{} load L{lid} -> {val} ({order:?}){stale}",
        h.tid
    ));
    val
}

pub(super) fn op_store(h: &Handle, addr: usize, init: u64, val: u64, order: Ordering) {
    let Some(mut g) = schedule_point(&h.shared, h.tid) else {
        return;
    };
    let g = &mut *g;
    let lid = ensure_location(g, addr, init);
    sc_pre(g, h.tid, order);
    apply_write(g, h.tid, addr, val, order, None);
    sc_post_write(g, h.tid, order);
    g.oplog
        .push(format!("T{} store L{lid} = {val} ({order:?})", h.tid));
}

pub(super) fn op_rmw(
    h: &Handle,
    addr: usize,
    init: u64,
    f: &mut dyn FnMut(u64) -> u64,
    order: Ordering,
) -> u64 {
    let Some(mut g) = schedule_point(&h.shared, h.tid) else {
        return init;
    };
    let g = &mut *g;
    let lid = ensure_location(g, addr, init);
    sc_pre(g, h.tid, order);
    // An RMW is atomic: it always reads the newest store.
    let last = g.mem[&addr].stores.len() - 1;
    let old = g.mem[&addr].stores[last].val;
    let continue_rel = g.mem[&addr].stores[last].rel.clone();
    apply_read_effects(g, h.tid, addr, last, order);
    let new = f(old);
    // The RMW continues the release sequence of the store it read.
    apply_write(g, h.tid, addr, new, order, continue_rel);
    sc_post_write(g, h.tid, order);
    g.oplog
        .push(format!("T{} rmw L{lid} {old} -> {new} ({order:?})", h.tid));
    old
}

#[allow(
    clippy::too_many_arguments,
    reason = "mirrors compare_exchange's own six-place signature"
)]
pub(super) fn op_cas(
    h: &Handle,
    addr: usize,
    init: u64,
    expected: u64,
    new: u64,
    success: Ordering,
    failure: Ordering,
) -> Result<u64, u64> {
    let Some(mut g) = schedule_point(&h.shared, h.tid) else {
        return Err(init);
    };
    let g = &mut *g;
    let lid = ensure_location(g, addr, init);
    let last = g.mem[&addr].stores.len() - 1;
    let old = g.mem[&addr].stores[last].val;
    if old == expected {
        sc_pre(g, h.tid, success);
        let continue_rel = g.mem[&addr].stores[last].rel.clone();
        apply_read_effects(g, h.tid, addr, last, success);
        apply_write(g, h.tid, addr, new, success, continue_rel);
        sc_post_write(g, h.tid, success);
        g.oplog.push(format!(
            "T{} cas L{lid} {expected} -> {new} ok ({success:?})",
            h.tid
        ));
        Ok(old)
    } else {
        sc_pre(g, h.tid, failure);
        apply_read_effects(g, h.tid, addr, last, failure);
        g.oplog.push(format!(
            "T{} cas L{lid} expected {expected}, found {old} ({failure:?})",
            h.tid
        ));
        Err(old)
    }
}

pub(super) fn op_fence(h: &Handle, order: Ordering) {
    let Some(mut g) = schedule_point(&h.shared, h.tid) else {
        return;
    };
    let g = &mut *g;
    if is_acquire(order) {
        let pending = g.threads[h.tid].pending_acquire.clone();
        g.threads[h.tid].clock.join(&pending);
    }
    sc_pre(g, h.tid, order);
    if is_release(order) {
        let clock = g.threads[h.tid].clock.clone();
        g.threads[h.tid].release_fence = Some(clock);
    }
    sc_post_write(g, h.tid, order);
    g.oplog.push(format!("T{} fence({order:?})", h.tid));
}

/// A *directed* scheduling point: hand the turn to some other enabled
/// thread if one exists (a voluntary switch — it never consumes
/// preemption budget). This is what keeps spin-with-`yield_now` retry
/// loops explorable: without the forced handoff, the DFS's
/// "continue the current thread" default would spin such a loop into the
/// step budget on every schedule.
pub(super) fn op_yield(h: &Handle) {
    let mut g = lock(&h.shared);
    if g.abort {
        if std::thread::panicking() {
            return;
        }
        drop(g);
        panic_any(Abort);
    }
    g.steps += 1;
    if g.steps > g.max_steps {
        let max = g.max_steps;
        fail(
            &h.shared,
            &mut g,
            &format!(
                "step budget exhausted ({max} facade operations in one schedule): \
                 livelock, or raise Options::max_steps"
            ),
        );
    }
    g.oplog.push(format!("T{} yield", h.tid));
    let cands = enabled_others(&g, h.tid);
    if cands.is_empty() {
        return;
    }
    let picked = if cands.len() > 1 {
        choose(&h.shared, &mut g, cands.len())
    } else {
        0
    };
    g.turn = Turn::Thread(cands[picked]);
    h.shared.cv.notify_all();
    let _ = wait_for_turn(&h.shared, g, h.tid);
}

/// Drop hook: forget a location so address reuse cannot alias. Not a
/// scheduling point (drops must stay branch-free, and may run while the
/// schedule is aborting).
pub(super) fn op_forget(h: &Handle, addr: usize) {
    let mut g = lock(&h.shared);
    g.mem.remove(&addr);
    for t in &mut g.threads {
        t.floors.remove(&addr);
    }
}

// ---------------------------------------------------------------------------
// Modeled mutex / condvar operations (used by super::sync)
// ---------------------------------------------------------------------------

pub(super) fn op_mutex_lock(h: &Handle, addr: usize) {
    let Some(mut g) = schedule_point(&h.shared, h.tid) else {
        return;
    };
    loop {
        let st = g.mutexes.entry(addr).or_default();
        if st.held_by.is_none() {
            st.held_by = Some(h.tid);
            let rel = st.rel_clock.clone();
            g.threads[h.tid].clock.join(&rel);
            g.oplog.push(format!("T{} locks M{addr:#x}", h.tid));
            return;
        }
        let Some(next) = block_until_runnable(&h.shared, g, h.tid, BlockKind::Mutex(addr)) else {
            return;
        };
        g = next;
    }
}

pub(super) fn op_mutex_unlock(h: &Handle, addr: usize) {
    // Guard drops run during unwinding too: never panic here, just keep
    // the bookkeeping consistent. A guard whose lock was skipped because
    // the schedule aborted mid-acquire unlocks a mutex it never owned —
    // tolerate that quietly (the schedule's result is already decided).
    let mut g = lock(&h.shared);
    let clock = g.threads[h.tid].clock.clone();
    let st = g.mutexes.entry(addr).or_default();
    if st.held_by != Some(h.tid) {
        return;
    }
    st.held_by = None;
    st.rel_clock = clock;
    for t in 0..g.threads.len() {
        if g.threads[t].status == Status::Blocked(BlockKind::Mutex(addr)) {
            g.threads[t].status = Status::Ready;
        }
    }
    g.oplog.push(format!("T{} unlocks M{addr:#x}", h.tid));
}

pub(super) fn op_cv_wait(h: &Handle, cv_addr: usize, mutex_addr: usize) {
    let Some(mut g) = schedule_point(&h.shared, h.tid) else {
        return;
    };
    g.cvs.entry(cv_addr).or_default().waiters.push(h.tid);
    // Atomically release the mutex and start waiting (no scheduling point
    // in between — exactly the condvar guarantee).
    let clock = g.threads[h.tid].clock.clone();
    let st = g.mutexes.entry(mutex_addr).or_default();
    debug_assert_eq!(st.held_by, Some(h.tid), "cv wait without the lock");
    st.held_by = None;
    st.rel_clock = clock;
    for t in 0..g.threads.len() {
        if g.threads[t].status == Status::Blocked(BlockKind::Mutex(mutex_addr)) {
            g.threads[t].status = Status::Ready;
        }
    }
    g.oplog.push(format!("T{} waits on C{cv_addr:#x}", h.tid));
    let Some(mut g) = block_until_runnable(&h.shared, g, h.tid, BlockKind::Condvar(cv_addr)) else {
        return;
    };
    // Woken: reacquire the mutex before returning to the caller.
    loop {
        let st = g.mutexes.entry(mutex_addr).or_default();
        if st.held_by.is_none() {
            st.held_by = Some(h.tid);
            let rel = st.rel_clock.clone();
            g.threads[h.tid].clock.join(&rel);
            g.oplog.push(format!("T{} relocks M{mutex_addr:#x}", h.tid));
            return;
        }
        let Some(next) = block_until_runnable(&h.shared, g, h.tid, BlockKind::Mutex(mutex_addr))
        else {
            return;
        };
        g = next;
    }
}

pub(super) fn op_cv_notify_all(h: &Handle, cv_addr: usize) {
    let Some(mut g) = schedule_point(&h.shared, h.tid) else {
        return;
    };
    let waiters = std::mem::take(&mut g.cvs.entry(cv_addr).or_default().waiters);
    for w in &waiters {
        g.threads[*w].status = Status::Ready;
    }
    g.oplog.push(format!(
        "T{} notifies C{cv_addr:#x} ({} waiter(s))",
        h.tid,
        waiters.len()
    ));
}

/// Drop hook for modeled mutexes/condvars.
pub(super) fn op_forget_sync(h: &Handle, addr: usize) {
    let mut g = lock(&h.shared);
    g.mutexes.remove(&addr);
    g.cvs.remove(&addr);
}

// ---------------------------------------------------------------------------
// Virtual threads
// ---------------------------------------------------------------------------

/// Restores the thread-local [`CURRENT`] handle on scope exit (including
/// unwinds).
struct CurrentGuard;

impl Drop for CurrentGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = None);
    }
}

fn payload_str(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn vthread_main(shared: &Arc<ExecShared>, tid: usize, body: impl FnOnce()) {
    CURRENT.with(|c| {
        *c.borrow_mut() = Some(Handle {
            shared: Arc::clone(shared),
            tid,
        });
    });
    let _reset = CurrentGuard;
    // Wait to be scheduled for the first time.
    {
        let g = lock(shared);
        let Some(g) = wait_for_turn_quiet(shared, g, tid) else {
            return;
        };
        drop(g);
    }
    match catch_unwind(AssertUnwindSafe(body)) {
        Ok(()) => {
            let mut g = lock(shared);
            finish_thread(shared, &mut g, tid);
        }
        Err(p) => {
            let mut g = lock(shared);
            if p.downcast_ref::<Abort>().is_some() {
                // Schedule aborted elsewhere; exit quietly.
                g.threads[tid].status = Status::Finished;
            } else {
                let msg = format!("virtual thread T{tid} panicked: {}", payload_str(&*p));
                record_failure(shared, &mut g, &msg);
            }
        }
    }
}

/// Like [`wait_for_turn`] but never unwinds: used at thread startup,
/// where an abort simply means "exit before running the body".
fn wait_for_turn_quiet<'a>(
    shared: &'a ExecShared,
    mut g: MutexGuard<'a, ExecState>,
    tid: usize,
) -> Option<MutexGuard<'a, ExecState>> {
    loop {
        if g.abort {
            g.threads[tid].status = Status::Finished;
            return None;
        }
        if g.turn == Turn::Thread(tid) {
            return Some(g);
        }
        g = shared.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
    }
}

/// A handle to a virtual thread created by [`super::spawn`]; joining
/// establishes the usual happens-before edge and returns the closure's
/// value.
pub struct JoinHandle<T> {
    handle: Option<Handle>,
    tid: usize,
    result: Arc<Mutex<Option<T>>>,
}

impl<T> JoinHandle<T> {
    /// Blocks the calling virtual thread until the target finishes, then
    /// returns its result.
    ///
    /// # Panics
    ///
    /// Panics if called outside the model run that created the handle.
    pub fn join(self) -> T {
        let me = super::current().expect("JoinHandle::join outside a model run");
        let Some(target) = &self.handle else {
            // Handle minted while the schedule was already aborting: the
            // caller is unwinding, finish the join as quietly as possible.
            return Self::dead_join(&self.result);
        };
        assert!(
            Arc::ptr_eq(&me.shared, &target.shared),
            "JoinHandle::join from a different model run"
        );
        let Some(mut g) = schedule_point(&me.shared, me.tid) else {
            return Self::dead_join(&self.result);
        };
        if g.threads[self.tid].status != Status::Finished {
            let Some(next) = block_until_runnable(&me.shared, g, me.tid, BlockKind::Join(self.tid))
            else {
                return Self::dead_join(&self.result);
            };
            g = next;
        }
        // The join edge: everything the child did happens-before us now.
        let child_clock = g.threads[self.tid].clock.clone();
        g.threads[me.tid].clock.join(&child_clock);
        g.oplog.push(format!("T{} joins T{}", me.tid, self.tid));
        drop(g);
        self.result
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
            .expect("joined thread produced no result")
    }

    /// Join fallback for a thread that is already unwinding out of an
    /// aborted schedule: it must not panic again (that would abort the
    /// process), so it takes whatever result exists and otherwise parks —
    /// in practice unreachable, since `join` from a `Drop` during an
    /// abort is the only route here.
    fn dead_join(result: &Arc<Mutex<Option<T>>>) -> T {
        if let Some(v) = result.lock().unwrap_or_else(PoisonError::into_inner).take() {
            return v;
        }
        loop {
            std::thread::park();
        }
    }
}

/// Implementation of [`super::spawn`].
pub(super) fn spawn_virtual<T, F>(h: &Handle, f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let Some(mut g) = schedule_point(&h.shared, h.tid) else {
        // Aborting mid-unwind: hand back an inert handle.
        return JoinHandle {
            handle: None,
            tid: usize::MAX,
            result: Arc::new(Mutex::new(None)),
        };
    };
    if g.threads.len() >= g.max_threads {
        let max = g.max_threads;
        fail(
            &h.shared,
            &mut g,
            &format!("too many virtual threads (max_threads = {max})"),
        );
    }
    let tid = g.threads.len();
    // The spawn edge: the child starts knowing everything its parent knew.
    let clock = g.threads[h.tid].clock.clone();
    g.threads.push(VThread::new(clock));
    let result = Arc::new(Mutex::new(None));
    let result2 = Arc::clone(&result);
    let shared2 = Arc::clone(&h.shared);
    let os = std::thread::Builder::new()
        .name(format!("model-t{tid}"))
        .spawn(move || {
            vthread_main(&shared2, tid, move || {
                let v = f();
                *result2.lock().unwrap_or_else(PoisonError::into_inner) = Some(v);
            });
        })
        .expect("failed to spawn model OS thread");
    g.os_handles.push(os);
    g.oplog.push(format!("T{} spawns T{tid}", h.tid));
    JoinHandle {
        handle: Some(Handle {
            shared: Arc::clone(&h.shared),
            tid,
        }),
        tid,
        result,
    }
}

// ---------------------------------------------------------------------------
// The controller: schedule loop, DFS advance, public entry points
// ---------------------------------------------------------------------------

impl ExecState {
    fn new(opts: &Options) -> Self {
        ExecState {
            mode: Mode::Dfs,
            turn: Turn::Controller,
            threads: Vec::new(),
            mem: HashMap::new(),
            next_lid: 0,
            sc_clock: VClock::default(),
            mutexes: HashMap::new(),
            cvs: HashMap::new(),
            tape: Vec::new(),
            pos: 0,
            preemptions: 0,
            bound: opts.preemption_bound,
            steps: 0,
            max_steps: opts.max_steps,
            max_threads: opts.max_threads,
            rng: 0,
            oplog: Vec::new(),
            failure: None,
            abort: false,
            os_handles: Vec::new(),
        }
    }

    /// Resets per-schedule state; the tape survives (it *is* the DFS
    /// cursor).
    fn reset_for_schedule(&mut self, mode: Mode, rng_seed: u64) {
        self.mode = mode;
        self.turn = Turn::Thread(0);
        self.threads = vec![VThread::new(VClock::default())];
        self.mem.clear();
        self.next_lid = 0;
        self.sc_clock = VClock::default();
        self.mutexes.clear();
        self.cvs.clear();
        if mode == Mode::Random {
            self.tape.clear();
        }
        self.pos = 0;
        self.preemptions = 0;
        self.steps = 0;
        self.rng = rng_seed;
        self.oplog.clear();
        self.failure = None;
        self.abort = false;
    }

    /// Bumps the deepest choice that still has unexplored options;
    /// `false` when the whole bounded space has been enumerated.
    fn advance_tape(&mut self) -> bool {
        while let Some(last) = self.tape.last_mut() {
            if last.picked + 1 < last.options {
                last.picked += 1;
                return true;
            }
            self.tape.pop();
        }
        false
    }
}

fn run_one_schedule(
    shared: &Arc<ExecShared>,
    f: &Arc<dyn Fn() + Send + Sync>,
    mode: Mode,
    rng_seed: u64,
) -> Result<(), String> {
    {
        let mut g = lock(shared);
        g.reset_for_schedule(mode, rng_seed);
    }
    let shared0 = Arc::clone(shared);
    let f0 = Arc::clone(f);
    let h0 = std::thread::Builder::new()
        .name("model-t0".into())
        .spawn(move || vthread_main(&shared0, 0, move || f0()))
        .expect("failed to spawn model OS thread");
    {
        let mut g = lock(shared);
        g.os_handles.push(h0);
    }
    let handles = {
        let mut g = lock(shared);
        while g.turn != Turn::Controller {
            g = shared.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
        std::mem::take(&mut g.os_handles)
    };
    for h in handles {
        // A virtual thread never propagates a panic out of vthread_main;
        // join errors would mean a bug in the engine itself.
        let _ = h.join();
    }
    let mut g = lock(shared);
    match g.failure.take() {
        Some(msg) => Err(msg),
        None => Ok(()),
    }
}

/// Runs `f` under the model checker, returning the exploration [`Report`]
/// or the first [`Failure`] found. See the [`super`] module docs.
///
/// # Errors
///
/// Returns [`Failure`] — message, per-operation trace, and replaying
/// choice tape — for the first schedule that panics, asserts, deadlocks,
/// diverges, or exhausts its step budget.
pub fn try_explore<F>(opts: Options, f: F) -> Result<Report, Failure>
where
    F: Fn() + Send + Sync + 'static,
{
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let shared = Arc::new(ExecShared {
        state: Mutex::new(ExecState::new(&opts)),
        cv: Condvar::new(),
    });
    let mut exhaustive = 0usize;
    let mut complete = true;
    loop {
        run_one_schedule(&shared, &f, Mode::Dfs, 0).map_err(|message| Failure {
            message,
            schedules_explored: exhaustive,
        })?;
        exhaustive += 1;
        if exhaustive >= opts.max_schedules {
            complete = false;
            break;
        }
        let advanced = {
            let mut g = lock(&shared);
            g.advance_tape()
        };
        if !advanced {
            break;
        }
    }
    let mut seed = opts.seed;
    for i in 0..opts.random_schedules {
        let s = splitmix64(&mut seed);
        run_one_schedule(&shared, &f, Mode::Random, s).map_err(|message| Failure {
            message,
            schedules_explored: exhaustive + i,
        })?;
    }
    Ok(Report {
        exhaustive_schedules: exhaustive,
        random_schedules: opts.random_schedules,
        complete,
    })
}

/// Like [`try_explore`] but panics (with the full trace) on a failure —
/// the convenient form for tests.
pub fn explore<F>(opts: Options, f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    match try_explore(opts, f) {
        Ok(r) => r,
        Err(e) => panic!("{e}"),
    }
}
