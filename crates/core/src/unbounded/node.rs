//! Ordering-tree nodes of the unbounded queue (Figure 3 of the paper).

use wfqueue_sync::atomic::{AtomicUsize, Ordering};

use crossbeam_utils::CachePadded;
use wfqueue_metrics as metrics;
use wfqueue_segvec::SegVec;

use super::block::Block;

/// One node of the ordering tree: an infinite write-once `blocks` array and
/// the `head` index of the next free slot.
///
/// `blocks[0]` holds the dummy block and `head` starts at 1, exactly as in
/// Figure 3. Blocks are only ever installed at `head` by a CAS and `head`
/// only ever advances by one past a non-null block, which maintains
/// Invariant 3: `blocks[0..head)` are installed, everything from `head + 1`
/// on is empty.
///
/// With epoch-based reclamation enabled
/// ([`crate::unbounded::ReclaimPolicy`]), the installed prefix starts at
/// `boundary` instead of 0: slots below `boundary` have been unlinked and
/// freed, and the block at `boundary` is a summary sentinel carrying the
/// replaced block's scalar fields ([`Block::summary_of`]). `boundary` is 0
/// (the dummy) for the paper's never-reclaiming queue and only ever
/// advances, written exclusively by the single truncator thread that holds
/// the reclamation lock.
pub(crate) struct Node<T> {
    head: CachePadded<AtomicUsize>,
    /// Oldest live index of `blocks` (see the struct docs). Read with a
    /// plain atomic load that is *not* counted as an algorithm step: it is
    /// reclamation metadata, constant 0 whenever reclamation is off.
    boundary: CachePadded<AtomicUsize>,
    pub blocks: SegVec<Block<T>>,
}

impl<T> Node<T> {
    pub fn new() -> Self {
        let blocks = SegVec::new();
        blocks
            .try_install(0, Box::new(Block::dummy()))
            .ok()
            .expect("installing the dummy block in a fresh node cannot fail");
        Node {
            head: CachePadded::new(AtomicUsize::new(1)),
            boundary: CachePadded::new(AtomicUsize::new(0)),
            blocks,
        }
    }

    /// Reads `head` (one shared step).
    pub fn head(&self) -> usize {
        metrics::record_shared_load();
        // ORDERING: SC per the paper's SC-memory assumption (`head` is
        // Figure 4 shared state; relaxation is gated on the model
        // checker per the ROADMAP).
        self.head.load(Ordering::SeqCst)
    }

    /// Reads `head` without recording an algorithm step — used only by the
    /// reclamation trigger, which is maintenance work outside the paper's
    /// step-count model.
    pub fn head_untracked(&self) -> usize {
        // ORDERING: SC, as in `head` (same shared field).
        self.head.load(Ordering::SeqCst)
    }

    /// The truncation boundary: the oldest index of `blocks` that is still
    /// installed (0 until the first truncation). Untracked load — see the
    /// struct docs.
    pub fn boundary(&self) -> usize {
        self.boundary.load(Ordering::Acquire)
    }

    /// Advances the truncation boundary. Called only by the truncator that
    /// holds the reclamation lock, after the prefix below `b` has been
    /// unlinked and `blocks[b]` replaced by a summary sentinel.
    pub fn set_boundary(&self, b: usize) {
        debug_assert!(b >= self.boundary());
        self.boundary.store(b, Ordering::Release);
    }

    /// CAS `head` from `h` to `h + 1` (Figure 4 line 63); one CAS step.
    pub fn try_advance_head(&self, h: usize) {
        // ORDERING: SC per the paper's SC-memory assumption.
        let r = self
            .head
            .compare_exchange(h, h + 1, Ordering::SeqCst, Ordering::SeqCst);
        metrics::record_cas(r.is_ok());
    }

    /// The block at `index`, if installed.
    pub fn block(&self, index: usize) -> Option<&Block<T>> {
        self.blocks.get(index)
    }

    /// The block at `index` read without recording an algorithm step — the
    /// truncator's accessor: its probes are maintenance work outside the
    /// paper's cost model, and recording them would charge an unbounded
    /// burst of steps to whichever operation happens to win the
    /// reclamation try-lock.
    pub fn block_untracked(&self, index: usize) -> Option<&Block<T>> {
        self.blocks.get_untracked(index)
    }

    /// The block at `index`, which the caller knows is installed.
    ///
    /// # Panics
    ///
    /// Panics if the slot is empty, i.e. if the stated invariant is violated.
    pub fn block_installed(&self, index: usize, why: &'static str) -> &Block<T> {
        match self.blocks.get(index) {
            Some(b) => b,
            None => panic!("block {index} must be installed: {why}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_node_has_dummy_and_head_one() {
        let n: Node<u32> = Node::new();
        assert_eq!(n.head(), 1);
        assert!(n.block(0).is_some());
        assert!(n.block(1).is_none());
        assert_eq!(n.block(0).unwrap().sumenq, 0);
    }

    #[test]
    fn advance_head_is_cas_like() {
        let n: Node<u32> = Node::new();
        n.try_advance_head(5); // wrong expected value: no-op
        assert_eq!(n.head(), 1);
        n.try_advance_head(1);
        assert_eq!(n.head(), 2);
        n.try_advance_head(1); // stale: no-op
        assert_eq!(n.head(), 2);
    }

    #[test]
    fn boundary_starts_at_dummy_and_advances() {
        let n: Node<u32> = Node::new();
        assert_eq!(n.boundary(), 0);
        n.set_boundary(0); // idempotent no-op
        assert_eq!(n.boundary(), 0);
        n.blocks.try_install(1, Box::new(Block::dummy())).ok();
        n.set_boundary(1);
        assert_eq!(n.boundary(), 1);
        assert_eq!(n.head_untracked(), 1);
    }

    #[test]
    #[should_panic(expected = "must be installed")]
    fn block_installed_panics_on_hole() {
        let n: Node<u32> = Node::new();
        let _ = n.block_installed(3, "test expects a hole");
    }
}
