//! [`ConcurrentQueue`] adapters for the channel facade, so every checker
//! in this workspace — the Wing–Gong linearizability rounds, the
//! adversarial-scheduler audits, the proptest workloads — runs unchanged
//! against `wfqueue_channel`'s `Sender`/`Receiver` layer.
//!
//! A harness "handle" is a full endpoint pair (one `Sender` + one
//! `Receiver`, two process ids of the backing tree), because the uniform
//! [`QueueHandle`] interface issues both enqueues and dequeues from one
//! thread. [`ChannelMode`] selects which consumption mode the suite
//! exercises:
//!
//! * [`ChannelMode::Try`] — `try_send`/`try_recv`, the zero-extra-CAS
//!   pass-through (this is the mode the step-parity experiments use);
//! * [`ChannelMode::Blocking`] — `send` plus `recv_timeout` with a short
//!   timeout (a timeout maps to `None`, which is linearizable: the
//!   channel was observed empty inside the operation's interval);
//! * `ChannelMode::Async` (`feature = "async"`) — the `send_async`/
//!   `recv_async` futures driven by the facade's `block_on` executor, so
//!   the waker-registry path gets the same linearizability scrutiny.
//!
//! The adapters build their channels with [`ReclaimPolicy::Off`] so that
//! step counts compare apples-to-apples against the raw queues.

use std::sync::Mutex;
use std::time::Duration;

use wfqueue_channel::{
    Backend, Channel, Endpoints, PlacementConfig, Receiver, ReclaimPolicy, Routing, Sender,
};

use crate::queue_api::{ConcurrentQueue, QueueHandle};

/// How long the blocking/async dequeue modes wait before reporting the
/// channel empty. Short, so dequeue-heavy histories stay fast; long
/// enough that a concurrent send's wakeup (microseconds) is routinely
/// exercised.
const RECV_PATIENCE: Duration = Duration::from_micros(500);

/// Which consumption mode of the channel a suite exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelMode {
    /// `try_send` / `try_recv` — the non-blocking pass-through.
    Try,
    /// `send` / `recv_timeout` — parked waiting, timeouts map to `None`.
    Blocking,
    /// `send_async` / `recv_async` driven by `wfqueue_channel::exec` —
    /// exercises the waker registry.
    #[cfg(feature = "async")]
    Async,
}

/// A channel under test: a pool of pre-minted endpoint pairs handed out
/// as harness handles.
///
/// The pool keeps its channel connected while undistributed pairs remain;
/// once every handle is taken and dropped the channel disconnects — which
/// is after any workload finishes, so harness sends cannot fail.
///
/// # Examples
///
/// ```
/// use wfqueue_harness::channel_api::{ChannelMode, WfChannel};
/// use wfqueue_harness::queue_api::{ConcurrentQueue, QueueHandle};
///
/// let q: WfChannel<u64> = WfChannel::unbounded(2, ChannelMode::Try);
/// let mut h = q.handle();
/// h.enqueue(9);
/// assert_eq!(h.dequeue(), Some(9));
/// ```
pub struct WfChannel<T: Clone + Send + Sync + 'static> {
    pool: Mutex<Vec<(Sender<T>, Receiver<T>)>>,
    mode: ChannelMode,
    handles: usize,
    name: &'static str,
}

impl<T: Clone + Send + Sync + 'static> WfChannel<T> {
    /// An unbounded channel sized for `p` harness handles (`2p` process
    /// ids: one sender + one receiver each).
    #[must_use]
    pub fn unbounded(p: usize, mode: ChannelMode) -> Self {
        let (tx, rx) = Channel::builder()
            .backend(Backend::Unbounded)
            .endpoints(Endpoints {
                senders: p,
                receivers: p,
            })
            .reclaim(ReclaimPolicy::Off)
            .build()
            .expect("valid harness channel config");
        Self::from_pair(tx, rx, p, mode, "wf-channel-unbounded")
    }

    /// A capacity-bounded channel (§6 bounded-tree backend) sized for `p`
    /// harness handles.
    ///
    /// Size `capacity` at least as large as the workload's maximum
    /// in-flight value count when using [`ChannelMode::Try`]: the uniform
    /// [`QueueHandle::enqueue`]/[`QueueHandle::enqueue_batch`] have no
    /// failure path, so a `Full` response panics the adapter.
    #[must_use]
    pub fn bounded(p: usize, capacity: usize, mode: ChannelMode) -> Self {
        let (tx, rx) = Channel::builder()
            .backend(Backend::BoundedTree { capacity })
            .endpoints(Endpoints {
                senders: p,
                receivers: p,
            })
            .build()
            .expect("valid harness channel config");
        Self::from_pair(tx, rx, p, mode, "wf-channel-bounded")
    }

    /// A channel over the wCQ-style bounded ring backend, sized for `p`
    /// harness handles. Same capacity caveat as [`WfChannel::bounded`]:
    /// in [`ChannelMode::Try`], a `Full` response panics the adapter.
    #[must_use]
    pub fn ring(p: usize, capacity: usize, mode: ChannelMode) -> Self {
        let (tx, rx) = Channel::builder()
            .backend(Backend::Ring { capacity })
            .endpoints(Endpoints {
                senders: p,
                receivers: p,
            })
            .build()
            .expect("valid harness channel config");
        Self::from_pair(tx, rx, p, mode, "wf-channel-ring")
    }

    /// A sharded channel (`shards` wait-free shards, rendezvous routing)
    /// sized for `p` harness handles.
    ///
    /// The `shards > 1` composite is per-*sender* FIFO, not one
    /// linearizable queue — run the Wing–Gong checker against
    /// `shards = 1`, and the per-producer workload audits against any
    /// shard count (exactly as for the raw sharded adapters).
    #[must_use]
    pub fn sharded(shards: usize, p: usize, mode: ChannelMode) -> Self {
        Self::sharded_routed(shards, p, mode, Routing::Rendezvous)
    }

    /// [`WfChannel::sharded`] with an explicit (full-coverage) routing
    /// policy, so the harness suites exercise the contention-aware scans
    /// through the channel facade too. Placement is pinned to
    /// [`PlacementConfig::Flat`] for run-to-run determinism.
    #[must_use]
    pub fn sharded_routed(shards: usize, p: usize, mode: ChannelMode, routing: Routing) -> Self {
        let (tx, rx) = Channel::builder()
            .backend(Backend::Sharded { shards })
            .endpoints(Endpoints {
                senders: p,
                receivers: p,
            })
            .routing(routing)
            .placement(PlacementConfig::Flat)
            .reclaim(ReclaimPolicy::Off)
            .build()
            .expect("valid harness channel config");
        Self::from_pair(tx, rx, p, mode, "wf-channel-sharded")
    }

    fn from_pair(
        tx: Sender<T>,
        rx: Receiver<T>,
        p: usize,
        mode: ChannelMode,
        name: &'static str,
    ) -> Self {
        assert!(p > 0, "need at least one handle");
        let mut pool = Vec::with_capacity(p);
        // Pair 0 is the constructor's own pair (process ids 0 and 1);
        // clones take ids in order after it. Deterministic, so step-parity
        // comparisons can reproduce the exact same tree layout.
        pool.push((tx, rx));
        for _ in 1..p {
            let tx = pool[0].0.try_clone().expect("endpoint budget sized to p");
            let rx = pool[0].1.try_clone().expect("endpoint budget sized to p");
            pool.push((tx, rx));
        }
        WfChannel {
            pool: Mutex::new(pool),
            mode,
            handles: p,
            name,
        }
    }
}

impl<T: Clone + Send + Sync + 'static> std::fmt::Debug for WfChannel<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WfChannel")
            .field("name", &self.name)
            .field("mode", &self.mode)
            .field("handles", &self.handles)
            .finish()
    }
}

impl<T: Clone + Send + Sync + 'static> ConcurrentQueue<T> for WfChannel<T> {
    type Handle<'a>
        = WfChannelHandle<T>
    where
        T: 'a;

    fn name(&self) -> &'static str {
        self.name
    }

    fn try_handle(&self) -> Option<Self::Handle<'_>> {
        let mut pool = self
            .pool
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if pool.is_empty() {
            None
        } else {
            let (tx, rx) = pool.remove(0);
            Some(WfChannelHandle {
                tx,
                rx,
                mode: self.mode,
            })
        }
    }

    fn capacity(&self) -> Option<usize> {
        Some(self.handles)
    }
}

/// One harness handle: a `Sender` + `Receiver` pair consumed in the
/// selected [`ChannelMode`].
#[derive(Debug)]
pub struct WfChannelHandle<T: Clone + Send + Sync + 'static> {
    /// The sending endpoint (exposed for tests that need endpoint-level
    /// access, e.g. to drop one side).
    pub tx: Sender<T>,
    /// The receiving endpoint.
    pub rx: Receiver<T>,
    mode: ChannelMode,
}

impl<T: Clone + Send + Sync + 'static> QueueHandle<T> for WfChannelHandle<T> {
    fn enqueue(&mut self, value: T) {
        match self.mode {
            ChannelMode::Try => self
                .tx
                .try_send(value)
                .unwrap_or_else(|e| panic!("harness channel try_send failed: {e}")),
            ChannelMode::Blocking => self
                .tx
                .send(value)
                .unwrap_or_else(|e| panic!("harness channel send failed: {e}")),
            #[cfg(feature = "async")]
            ChannelMode::Async => wfqueue_channel::exec::block_on(self.tx.send_async(value))
                .unwrap_or_else(|e| panic!("harness channel send_async failed: {e}")),
        }
    }

    fn dequeue(&mut self) -> Option<T> {
        match self.mode {
            // Empty and Disconnected both witness "empty at the
            // linearization point" — a valid `None`.
            ChannelMode::Try => self.rx.try_recv().ok(),
            ChannelMode::Blocking => self.rx.recv_timeout(RECV_PATIENCE).ok(),
            #[cfg(feature = "async")]
            ChannelMode::Async => {
                wfqueue_channel::exec::block_on_timeout(self.rx.recv_async(), RECV_PATIENCE)
                    .and_then(Result::ok)
            }
        }
    }

    fn enqueue_batch(&mut self, values: Vec<T>) {
        match self.mode {
            // Non-blocking all-or-nothing batch; as with `enqueue`, a
            // `Full` response on an undersized bounded channel panics
            // (the uniform interface has no failure path).
            ChannelMode::Try => self
                .tx
                .try_send_all(values)
                .unwrap_or_else(|e| panic!("harness channel try_send_all failed: {e}")),
            // The channel has no async batch API: batches ride the
            // blocking `send_all` in both remaining modes.
            #[cfg(feature = "async")]
            ChannelMode::Async => self
                .tx
                .send_all(values)
                .unwrap_or_else(|e| panic!("harness channel send_all failed: {e}")),
            ChannelMode::Blocking => self
                .tx
                .send_all(values)
                .unwrap_or_else(|e| panic!("harness channel send_all failed: {e}")),
        }
    }

    fn dequeue_batch(&mut self, count: usize) -> Vec<Option<T>> {
        let mut out: Vec<Option<T>> = self.rx.recv_up_to(count).into_iter().map(Some).collect();
        out.resize_with(count, || None);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn modes() -> Vec<ChannelMode> {
        vec![
            ChannelMode::Try,
            ChannelMode::Blocking,
            #[cfg(feature = "async")]
            ChannelMode::Async,
        ]
    }

    #[test]
    fn round_trip_all_backends_and_modes() {
        for mode in modes() {
            for q in [
                WfChannel::<u64>::unbounded(2, mode),
                WfChannel::<u64>::bounded(2, 64, mode),
                WfChannel::<u64>::ring(2, 64, mode),
                WfChannel::<u64>::sharded(2, 2, mode),
            ] {
                let mut h = q.handle();
                h.enqueue(1);
                h.enqueue(2);
                assert_eq!(h.dequeue(), Some(1), "{} {mode:?}", q.name());
                assert_eq!(h.dequeue(), Some(2), "{} {mode:?}", q.name());
                assert_eq!(h.dequeue(), None, "{} {mode:?}", q.name());
            }
        }
    }

    #[test]
    fn batch_round_trip() {
        for mode in modes() {
            let q = WfChannel::<u64>::unbounded(1, mode);
            let mut h = q.handle();
            h.enqueue_batch(vec![1, 2, 3]);
            assert_eq!(
                h.dequeue_batch(4),
                vec![Some(1), Some(2), Some(3), None],
                "{mode:?}"
            );
        }
    }

    #[test]
    fn pool_is_capped() {
        let q = WfChannel::<u64>::unbounded(2, ChannelMode::Try);
        assert_eq!(ConcurrentQueue::<u64>::capacity(&q), Some(2));
        let handles = q.handles();
        assert_eq!(handles.len(), 2);
        assert!(q.try_handle().is_none());
    }

    #[test]
    fn workload_audits_pass_through_the_channel() {
        use crate::workload::{run_workload, WorkloadSpec};
        for mode in modes() {
            let q = WfChannel::<u64>::unbounded(2, mode);
            let spec = WorkloadSpec {
                threads: 2,
                ops_per_thread: 400,
                enqueue_permille: 600,
                prefill: 8,
                seed: 0xC4A2,
            };
            let r = run_workload(&q, &spec);
            assert!(r.audits_ok(), "{mode:?}: {r:?}");
        }
    }
}
