//! Write-once lock-free storage substrates for the wait-free queue.
//!
//! The ordering-tree queue of Naderibeni & Ruppert (PODC 2023) stores, in
//! every tree node, an *infinite array* of blocks: slots are written at most
//! once (by a CAS from null), never overwritten, and never freed before the
//! whole structure is dropped (§3.3 and Invariant 3 of the paper). This
//! crate provides the two substrates that realise this model in Rust:
//!
//! * [`SegVec`] — an unbounded, lock-free, write-once vector built from
//!   geometrically growing segments, supporting wait-free `get` and
//!   CAS-based `try_install`;
//! * [`AtomicOnceCell`] — a single write-once slot, used for the `super`
//!   approximation and `response` fields of blocks.
//!
//! Both structures are the only place (besides the epoch-managed tree
//! versions of the bounded queue) where this workspace uses `unsafe`; each
//! block is justified by the write-once/never-freed protocol.

#![deny(missing_docs)]

mod once_cell;
mod seg_vec;

pub use once_cell::AtomicOnceCell;
pub use seg_vec::SegVec;
