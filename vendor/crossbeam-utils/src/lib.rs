//! Offline shim for `crossbeam-utils` (see `vendor/README.md`).
//!
//! Provides [`CachePadded`], the only item the workspace uses.

use core::fmt;
use core::ops::{Deref, DerefMut};

/// Pads and aligns a value to the length of a cache line so that two
/// `CachePadded` values never share one (avoiding false sharing).
///
/// 128-byte alignment matches crossbeam's choice on x86-64 (adjacent-line
/// prefetcher) and is a safe over-alignment elsewhere.
#[derive(Clone, Copy, Default, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

unsafe impl<T: Send> Send for CachePadded<T> {}
unsafe impl<T: Sync> Sync for CachePadded<T> {}

impl<T> CachePadded<T> {
    /// Pads and aligns a value to the length of a cache line.
    pub const fn new(value: T) -> CachePadded<T> {
        CachePadded { value }
    }

    /// Returns the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CachePadded")
            .field("value", &self.value)
            .finish()
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_and_transparent() {
        let p = CachePadded::new(7u64);
        assert_eq!(*p, 7);
        assert_eq!(core::mem::align_of::<CachePadded<u8>>(), 128);
        assert_eq!(p.into_inner(), 7);
    }
}
