#!/usr/bin/env bash
# Records the E15-broker load/soak result (120k bursty virtual clients
# over three topics, sync + async facades, latency tails and the
# live-block plateau) as BENCH_e15.json so the perf trajectory
# accumulates across PRs. Run from the repo root:
#
#   scripts/bench_e15.sh            # writes ./BENCH_e15.json
#   scripts/bench_e15.sh out.json   # writes to a custom path
set -euo pipefail

out="${1:-BENCH_e15.json}"

# The bench crate's own `async` feature pulls in the futures phase; the
# default workspace build stays sync-only.
cargo bench -p wfqueue_bench --features async --bench e15_broker -- --json > "$out"
echo "wrote $out:"
head -n 8 "$out"
