//! Offline shim for `crossbeam-epoch` (see `vendor/README.md`).
//!
//! Implements the subset of the crossbeam-epoch 0.9 API the workspace uses:
//! [`Atomic`], [`Owned`], [`Shared`], [`Guard`], [`pin`] and [`unprotected`].
//!
//! # Reclamation scheme
//!
//! Real crossbeam tracks a global epoch with per-thread local epochs. This
//! shim keeps one global, mutex-protected epoch state: an *era* counter
//! bumped by every deferred destruction, a multiset of live guards keyed by
//! the era they were pinned in, and a garbage list whose entries are
//! stamped with the era of their defer. A garbage entry stamped `s` is
//! freed as soon as no live guard has era `<= s` — i.e. once every guard
//! that was pinned *before* the defer has been dropped. Later pins get a
//! strictly larger era and never delay reclamation.
//!
//! Safety argument: an object may only be deferred after it has been
//! unlinked from the data structure, so a guard pinned *after* the defer
//! (era `> s`) can never reach it; any guard that could still hold a
//! reference was pinned before the defer and therefore has era `<= s`,
//! which blocks the free until that guard drops. All era bookkeeping
//! happens under one lock, so a defer racing with an unpin either lands
//! before the minimum-era computation (and is considered by it) or after
//! (and waits for the next unpin).
//!
//! Reclamation is eager (unlike a pin-count-zero scheme, progress does not
//! require a globally quiescent instant), at the cost of a short critical
//! section on every `pin`/`unpin`/`defer_destroy`.

use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::mem::ManuallyDrop;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::Mutex;
use std::{fmt, ptr};

/// Global epoch bookkeeping (see the module docs for the scheme).
struct EpochState {
    /// Era stamped onto the next pin and the next defer; bumped by defers.
    next_era: u64,
    /// Live guards, keyed by the era they were pinned in.
    active: BTreeMap<u64, usize>,
    /// Deferred destructions, stamped with the era of their defer.
    garbage: Vec<(u64, Deferred)>,
}

static EPOCH: Mutex<EpochState> = Mutex::new(EpochState {
    next_era: 0,
    active: BTreeMap::new(),
    garbage: Vec::new(),
});

fn epoch_state() -> std::sync::MutexGuard<'static, EpochState> {
    EPOCH.lock().unwrap_or_else(|e| e.into_inner())
}

struct Deferred {
    ptr: *mut (),
    destroy: unsafe fn(*mut ()),
}

// SAFETY: the raw pointers are only dereferenced by `destroy`, which is run
// by exactly one thread (the drainer) after all readers have unpinned.
unsafe impl Send for Deferred {}

unsafe fn destroy_box<T>(p: *mut ()) {
    // SAFETY: `p` was produced by `Box::into_raw` for a `T` (see `Owned`).
    drop(unsafe { Box::from_raw(p.cast::<T>()) });
}

/// Sentinel era for the [`unprotected`] guard: it does not participate in
/// pinning and executes deferred destructions eagerly.
const UNPROTECTED_ERA: u64 = u64::MAX;

/// A guard that keeps the current thread pinned.
pub struct Guard {
    /// Era this guard was pinned in ([`UNPROTECTED_ERA`] for the dummy).
    era: u64,
}

impl Guard {
    /// Defers destruction of the object `shared` points to until no pinned
    /// guard can still be holding a reference to it.
    ///
    /// # Safety
    ///
    /// The object must already be unreachable for threads that pin after
    /// this call, and must not be deferred twice.
    pub unsafe fn defer_destroy<T>(&self, shared: Shared<'_, T>) {
        let ptr = shared.ptr.cast_mut().cast::<()>();
        if ptr.is_null() {
            return;
        }
        if self.era == UNPROTECTED_ERA {
            // Caller has exclusive access (that is the `unprotected`
            // contract); destroy immediately.
            unsafe { destroy_box::<T>(ptr) };
            return;
        }
        let mut st = epoch_state();
        let stamp = st.next_era;
        st.next_era += 1;
        st.garbage.push((
            stamp,
            Deferred {
                ptr,
                destroy: destroy_box::<T>,
            },
        ));
    }

    /// Flushes thread-local deferred functions to the global list. The shim
    /// has no thread-local buffer, so this is a no-op kept for API parity.
    pub fn flush(&self) {}

    /// Unpins and immediately re-pins, giving reclamation a chance to run.
    pub fn repin(&mut self) {
        if self.era != UNPROTECTED_ERA {
            unpin_one(self.era);
            self.era = pin_one();
        }
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        if self.era != UNPROTECTED_ERA {
            unpin_one(self.era);
        }
    }
}

impl fmt::Debug for Guard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Guard { .. }")
    }
}

fn pin_one() -> u64 {
    let mut st = epoch_state();
    let era = st.next_era;
    *st.active.entry(era).or_insert(0) += 1;
    era
}

fn unpin_one(era: u64) {
    // The frees run outside the lock so that destructors which themselves
    // pin or defer cannot deadlock.
    let batch: Vec<(u64, Deferred)> = {
        let mut st = epoch_state();
        match st.active.get_mut(&era) {
            Some(n) if *n > 1 => *n -= 1,
            Some(_) => {
                st.active.remove(&era);
            }
            None => unreachable!("unpin of an era with no active guards"),
        }
        let min_live = st.active.keys().next().copied().unwrap_or(u64::MAX);
        let (free, keep) = std::mem::take(&mut st.garbage)
            .into_iter()
            .partition(|(stamp, _)| *stamp < min_live);
        st.garbage = keep;
        free
    };
    for (_, d) in batch {
        // SAFETY: every guard pinned before this object's defer (era <= its
        // stamp) has been dropped, and no later-pinned guard can reach it
        // (it was unlinked before deferral).
        unsafe { (d.destroy)(d.ptr) };
    }
}

/// Pins the current thread, returning a guard under whose lifetime loaded
/// [`Shared`] pointers remain valid.
#[must_use]
pub fn pin() -> Guard {
    Guard { era: pin_one() }
}

/// Returns a dummy guard for data that is not shared (e.g. inside `Drop`
/// with `&mut self`).
///
/// # Safety
///
/// The caller must guarantee exclusive access to the data the guard is used
/// with; deferred destructions run immediately.
pub unsafe fn unprotected() -> &'static Guard {
    static UNPROTECTED: Guard = Guard {
        era: UNPROTECTED_ERA,
    };
    &UNPROTECTED
}

/// Types that can be moved into an [`Atomic`]: [`Owned`] and [`Shared`].
pub trait Pointer<T> {
    /// Returns the machine representation of the pointer.
    fn into_ptr(self) -> *mut T;
    /// Rebuilds the pointer from its machine representation.
    ///
    /// # Safety
    ///
    /// `ptr` must have come from `into_ptr` of the same implementor.
    unsafe fn from_ptr(ptr: *mut T) -> Self;
}

/// An owned heap-allocated object (a `Box` that can enter an [`Atomic`]).
pub struct Owned<T> {
    boxed: ManuallyDrop<Box<T>>,
}

impl<T> Owned<T> {
    /// Allocates `value` on the heap.
    #[must_use]
    pub fn new(value: T) -> Owned<T> {
        Owned {
            boxed: ManuallyDrop::new(Box::new(value)),
        }
    }

    /// Converts into a [`Shared`] tied to `_guard`'s lifetime.
    #[allow(clippy::needless_lifetimes)]
    pub fn into_shared<'g>(self, _guard: &'g Guard) -> Shared<'g, T> {
        Shared {
            ptr: self.into_ptr(),
            _marker: PhantomData,
        }
    }

    /// Converts back into a `Box`.
    #[must_use]
    pub fn into_box(mut self) -> Box<T> {
        // SAFETY: `self` is forgotten right after, so the box is taken once.
        let b = unsafe { ManuallyDrop::take(&mut self.boxed) };
        std::mem::forget(self);
        b
    }
}

impl<T> Pointer<T> for Owned<T> {
    fn into_ptr(mut self) -> *mut T {
        // SAFETY: `self` is forgotten immediately, so the box is taken once.
        let boxed = unsafe { ManuallyDrop::take(&mut self.boxed) };
        std::mem::forget(self);
        Box::into_raw(boxed)
    }

    unsafe fn from_ptr(ptr: *mut T) -> Self {
        // SAFETY: per contract, `ptr` came from `Box::into_raw`.
        Owned {
            boxed: ManuallyDrop::new(unsafe { Box::from_raw(ptr) }),
        }
    }
}

impl<T> Drop for Owned<T> {
    fn drop(&mut self) {
        // SAFETY: still owned (conversions forget `self` first).
        unsafe { ManuallyDrop::drop(&mut self.boxed) };
    }
}

impl<T> Deref for Owned<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.boxed
    }
}

impl<T> DerefMut for Owned<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.boxed
    }
}

impl<T: fmt::Debug> fmt::Debug for Owned<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.boxed.fmt(f)
    }
}

/// A pointer to a shared object, valid while its guard `'g` is alive.
pub struct Shared<'g, T> {
    ptr: *const T,
    _marker: PhantomData<(&'g (), *const T)>,
}

impl<T> Clone for Shared<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for Shared<'_, T> {}

impl<T> PartialEq for Shared<'_, T> {
    fn eq(&self, other: &Self) -> bool {
        ptr::eq(self.ptr, other.ptr)
    }
}

impl<T> Eq for Shared<'_, T> {}

impl<'g, T> Shared<'g, T> {
    /// The null pointer.
    #[must_use]
    pub fn null() -> Shared<'g, T> {
        Shared {
            ptr: ptr::null(),
            _marker: PhantomData,
        }
    }

    /// Whether the pointer is null.
    #[must_use]
    pub fn is_null(&self) -> bool {
        self.ptr.is_null()
    }

    /// The raw pointer value.
    #[must_use]
    pub fn as_raw(&self) -> *const T {
        self.ptr
    }

    /// Dereferences the pointer.
    ///
    /// # Safety
    ///
    /// The pointer must be non-null and the object alive (guaranteed by the
    /// guard discipline when loaded from a live [`Atomic`]).
    pub unsafe fn deref(&self) -> &'g T {
        // SAFETY: forwarded to the caller.
        unsafe { &*self.ptr }
    }

    /// Converts to a reference, `None` when null.
    ///
    /// # Safety
    ///
    /// As for [`Shared::deref`], when non-null.
    pub unsafe fn as_ref(&self) -> Option<&'g T> {
        // SAFETY: forwarded to the caller.
        unsafe { self.ptr.as_ref() }
    }

    /// Takes ownership of the pointed-to object.
    ///
    /// # Safety
    ///
    /// The caller must have exclusive access (the object unlinked and no
    /// other thread able to reach it), and the pointer must be non-null.
    #[must_use]
    pub unsafe fn into_owned(self) -> Owned<T> {
        // SAFETY: forwarded to the caller.
        unsafe { Owned::from_ptr(self.ptr.cast_mut()) }
    }
}

impl<T> Pointer<T> for Shared<'_, T> {
    fn into_ptr(self) -> *mut T {
        self.ptr.cast_mut()
    }

    unsafe fn from_ptr(ptr: *mut T) -> Self {
        Shared {
            ptr,
            _marker: PhantomData,
        }
    }
}

impl<T> fmt::Debug for Shared<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shared({:p})", self.ptr)
    }
}

/// The error returned on a failed [`Atomic::compare_exchange`].
pub struct CompareExchangeError<'g, T, P: Pointer<T>> {
    /// The value the atomic actually held.
    pub current: Shared<'g, T>,
    /// Ownership of the value that failed to install, handed back.
    pub new: P,
}

impl<'g, T, P: Pointer<T>> fmt::Debug for CompareExchangeError<'g, T, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompareExchangeError")
            .field("current", &self.current)
            .finish_non_exhaustive()
    }
}

/// An atomic pointer that can be safely shared between threads.
pub struct Atomic<T> {
    ptr: AtomicPtr<T>,
}

// SAFETY: mirrors crossbeam: the atomic hands out references to T across
// threads, so T must be Send + Sync for the Atomic to be either.
unsafe impl<T: Send + Sync> Send for Atomic<T> {}
unsafe impl<T: Send + Sync> Sync for Atomic<T> {}

impl<T> Atomic<T> {
    /// Allocates `value` on the heap and returns an atomic pointer to it.
    #[must_use]
    pub fn new(value: T) -> Atomic<T> {
        Atomic::from(Owned::new(value))
    }

    /// The null atomic pointer.
    #[must_use]
    pub fn null() -> Atomic<T> {
        Atomic {
            ptr: AtomicPtr::new(ptr::null_mut()),
        }
    }

    /// Loads the pointer.
    pub fn load<'g>(&self, ord: Ordering, _guard: &'g Guard) -> Shared<'g, T> {
        Shared {
            ptr: self.ptr.load(ord),
            _marker: PhantomData,
        }
    }

    /// Stores `new` into the atomic (consuming ownership when `new` is an
    /// [`Owned`]).
    pub fn store<P: Pointer<T>>(&self, new: P, ord: Ordering) {
        self.ptr.store(new.into_ptr(), ord);
    }

    /// Compares the atomic against `current` and, on match, swaps in `new`.
    /// On failure, returns the actual value and hands `new` back.
    pub fn compare_exchange<'g, P: Pointer<T>>(
        &self,
        current: Shared<'_, T>,
        new: P,
        success: Ordering,
        failure: Ordering,
        _guard: &'g Guard,
    ) -> Result<Shared<'g, T>, CompareExchangeError<'g, T, P>> {
        let new_ptr = new.into_ptr();
        match self
            .ptr
            .compare_exchange(current.ptr.cast_mut(), new_ptr, success, failure)
        {
            Ok(_) => Ok(Shared {
                ptr: new_ptr,
                _marker: PhantomData,
            }),
            Err(actual) => Err(CompareExchangeError {
                current: Shared {
                    ptr: actual,
                    _marker: PhantomData,
                },
                // SAFETY: `new_ptr` came from `new.into_ptr()` just above.
                new: unsafe { P::from_ptr(new_ptr) },
            }),
        }
    }
}

impl<T> From<Owned<T>> for Atomic<T> {
    fn from(owned: Owned<T>) -> Self {
        Atomic {
            ptr: AtomicPtr::new(owned.into_ptr()),
        }
    }
}

impl<T> From<Shared<'_, T>> for Atomic<T> {
    fn from(shared: Shared<'_, T>) -> Self {
        Atomic {
            ptr: AtomicPtr::new(shared.into_ptr()),
        }
    }
}

impl<T> Default for Atomic<T> {
    fn default() -> Self {
        Atomic::null()
    }
}

impl<T> fmt::Debug for Atomic<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Atomic({:p})", self.ptr.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_store_cas_round_trip() {
        let a = Atomic::new(10u32);
        let guard = pin();
        let s = a.load(Ordering::SeqCst, &guard);
        assert_eq!(unsafe { *s.deref() }, 10);
        assert!(a
            .compare_exchange(
                s,
                Owned::new(11),
                Ordering::SeqCst,
                Ordering::SeqCst,
                &guard
            )
            .is_ok());
        let s2 = a.load(Ordering::SeqCst, &guard);
        assert_eq!(unsafe { *s2.deref() }, 11);
        // Stale CAS fails and hands the Owned back.
        let err = a
            .compare_exchange(
                s,
                Owned::new(12),
                Ordering::SeqCst,
                Ordering::SeqCst,
                &guard,
            )
            .unwrap_err();
        assert_eq!(*err.new, 12);
        assert_eq!(err.current, s2);
        unsafe {
            guard.defer_destroy(s);
            guard.defer_destroy(s2);
        }
        drop(guard);
    }

    #[test]
    fn deferred_drop_runs_at_quiescence() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let a = Atomic::new(D);
        {
            let guard = pin();
            let s = a.load(Ordering::SeqCst, &guard);
            unsafe { guard.defer_destroy(s) };
            // Still pinned: the deferring guard itself blocks the free.
            assert_eq!(DROPS.load(Ordering::SeqCst), 0);
        }
        // Eager reclamation: only guards pinned before the defer can block
        // it. Other tests in this binary may hold such guards briefly, so
        // allow a short grace period before asserting.
        for _ in 0..1000 {
            if DROPS.load(Ordering::SeqCst) == 1 {
                break;
            }
            drop(pin());
            std::thread::yield_now();
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 1);
    }
}
