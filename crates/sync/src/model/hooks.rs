//! The seam between the facade types and the model: every hook returns
//! `None`/`false` when the calling OS thread is not inside a model
//! schedule, in which case the facade falls through to the real
//! `std::sync::atomic` operation.

use crate::atomic::Ordering;

use super::{current, exec};

/// Modeled atomic load; `None` outside a model run.
pub(crate) fn atomic_load(addr: usize, init: impl FnOnce() -> u64, order: Ordering) -> Option<u64> {
    let h = current()?;
    Some(exec::op_load(&h, addr, init(), order))
}

/// Modeled atomic store; `false` outside a model run.
pub(crate) fn atomic_store(
    addr: usize,
    init: impl FnOnce() -> u64,
    val: u64,
    order: Ordering,
) -> bool {
    let Some(h) = current() else { return false };
    exec::op_store(&h, addr, init(), val, order);
    true
}

/// Modeled read-modify-write (returns the previous value); `None` outside
/// a model run.
pub(crate) fn atomic_rmw(
    addr: usize,
    init: impl FnOnce() -> u64,
    f: &mut dyn FnMut(u64) -> u64,
    order: Ordering,
) -> Option<u64> {
    let h = current()?;
    Some(exec::op_rmw(&h, addr, init(), f, order))
}

/// Modeled compare-and-exchange; `None` outside a model run.
pub(crate) fn atomic_cas(
    addr: usize,
    init: impl FnOnce() -> u64,
    expected: u64,
    new: u64,
    success: Ordering,
    failure: Ordering,
) -> Option<Result<u64, u64>> {
    let h = current()?;
    Some(exec::op_cas(
        &h,
        addr,
        init(),
        expected,
        new,
        success,
        failure,
    ))
}

/// Modeled memory fence; `false` outside a model run.
pub(crate) fn fence(order: Ordering) -> bool {
    let Some(h) = current() else { return false };
    exec::op_fence(&h, order);
    true
}

/// Pure scheduling point ([`crate::thread::yield_now`] /
/// [`crate::thread::sleep`] inside a model run); `false` outside one.
pub(crate) fn yield_point() -> bool {
    let Some(h) = current() else { return false };
    exec::op_yield(&h);
    true
}

/// Deregisters a dropped atomic's location so a later allocation reusing
/// its address cannot alias its store history. No-op outside a model run.
pub(crate) fn forget_location(addr: usize) {
    if let Some(h) = current() {
        exec::op_forget(&h, addr);
    }
}
