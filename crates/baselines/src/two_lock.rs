//! Michael & Scott's two-lock queue (the blocking algorithm from the same
//! 1996/1998 papers as [`crate::MsQueue`]).
//!
//! Enqueues and dequeues synchronise on separate locks over a linked list
//! with a sentinel, so producers and consumers do not contend with each
//! other. Blocking, so no wait-freedom — included as the "simple and fast
//! when uncontended" reference point.

use parking_lot::Mutex;
use wfqueue_metrics as metrics;

struct Node<T> {
    value: Option<T>,
    next: Option<Box<Node<T>>>,
}

struct Tail<T> {
    /// Pointer to the current tail node, always valid while `head` owns the
    /// chain. Never dangles: nodes are only freed by dequeues, which never
    /// free the node `tail` points at (the sentinel rule).
    tail: *mut Node<T>,
}

// SAFETY: the raw pointer is only dereferenced under the tail lock, and the
// pointee is kept alive by the head-owned chain (sentinel discipline).
unsafe impl<T: Send> Send for Tail<T> {}

/// The two-lock Michael–Scott queue.
///
/// # Examples
///
/// ```
/// let q = wfqueue_baselines::TwoLockQueue::new();
/// q.enqueue("x");
/// assert_eq!(q.dequeue(), Some("x"));
/// assert_eq!(q.dequeue(), None);
/// ```
pub struct TwoLockQueue<T> {
    head: Mutex<Box<Node<T>>>,
    tail: Mutex<Tail<T>>,
}

impl<T: Send> TwoLockQueue<T> {
    /// Creates an empty queue (one sentinel node).
    #[must_use]
    pub fn new() -> Self {
        let mut sentinel = Box::new(Node {
            value: None,
            next: None,
        });
        let tail_ptr: *mut Node<T> = &mut *sentinel;
        TwoLockQueue {
            head: Mutex::new(sentinel),
            tail: Mutex::new(Tail { tail: tail_ptr }),
        }
    }

    /// Appends `value` to the back of the queue.
    pub fn enqueue(&self, value: T) {
        let mut node = Box::new(Node {
            value: Some(value),
            next: None,
        });
        let new_tail: *mut Node<T> = &mut *node;
        metrics::record_shared_store(); // lock acquisition (shared access)
        let mut tail = self.tail.lock();
        // SAFETY: under the tail lock, `tail.tail` points to the live tail
        // node of the chain owned by `head` (sentinel discipline).
        unsafe {
            (*tail.tail).next = Some(node);
        }
        tail.tail = new_tail;
    }

    /// Removes and returns the front value, or `None` if the queue is empty.
    pub fn dequeue(&self) -> Option<T> {
        metrics::record_shared_store(); // lock acquisition (shared access)
        let mut head = self.head.lock();
        let next = head.next.take()?;
        // The old sentinel is dropped; `next` becomes the new sentinel after
        // we take its value.
        *head = next;
        head.value.take()
    }

    /// Whether the queue appears empty at this instant.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.head.lock().next.is_none()
    }
}

impl<T: Send> Default for TwoLockQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> std::fmt::Debug for TwoLockQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("TwoLockQueue")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;
    use std::sync::Arc;

    #[test]
    fn fifo_semantics_sequential() {
        let q = TwoLockQueue::new();
        let mut model = VecDeque::new();
        for i in 0..300u32 {
            if i % 4 == 1 {
                assert_eq!(q.dequeue(), model.pop_front());
            } else {
                q.enqueue(i);
                model.push_back(i);
            }
        }
        while let Some(v) = model.pop_front() {
            assert_eq!(q.dequeue(), Some(v));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn drop_frees_pending_nodes() {
        let q = TwoLockQueue::new();
        for i in 0..100 {
            q.enqueue(format!("value-{i}"));
        }
        drop(q); // must not leak or double-free (checked under sanitizers)
    }

    #[test]
    fn concurrent_producers_consumers() {
        let q = Arc::new(TwoLockQueue::new());
        let total = 4 * 5_000u64;
        let consumed: Vec<u64> = wfqueue_sync::thread::scope(|s| {
            for t in 0..4u64 {
                let q = Arc::clone(&q);
                s.spawn(move || {
                    for i in 0..5_000 {
                        q.enqueue((t << 32) | i);
                    }
                });
            }
            let join = {
                let q = Arc::clone(&q);
                s.spawn(move || {
                    let mut got = Vec::new();
                    let mut misses = 0;
                    while (got.len() as u64) < total && misses < 50_000_000 {
                        match q.dequeue() {
                            Some(v) => {
                                got.push(v);
                                misses = 0;
                            }
                            None => misses += 1,
                        }
                    }
                    got
                })
            };
            join.join().unwrap()
        });
        assert_eq!(consumed.len() as u64, total);
        let mut sorted = consumed.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len() as u64, total);
        // Single consumer: per-producer order must be exact.
        let mut last = [None::<u64>; 4];
        for v in &consumed {
            let t = (v >> 32) as usize;
            let i = v & 0xffff_ffff;
            if let Some(prev) = last[t] {
                assert!(i > prev);
            }
            last[t] = Some(i);
        }
    }
}
