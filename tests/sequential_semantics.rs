//! Cross-variant sequential semantics: both wait-free queue variants, the
//! vector extension and every baseline must agree with the `VecDeque`
//! specification on arbitrary single-threaded scripts.

use std::collections::VecDeque;

use proptest::prelude::*;
use wfqueue_harness::queue_api::{
    CoarseMutex, ConcurrentQueue, Ms, QueueHandle, Seg, TwoLock, WfBounded, WfRing, WfUnbounded,
};

#[derive(Debug, Clone)]
enum ScriptOp {
    Enq(u64),
    Deq,
}

fn script() -> impl Strategy<Value = Vec<ScriptOp>> {
    proptest::collection::vec(
        prop_oneof![any::<u64>().prop_map(ScriptOp::Enq), Just(ScriptOp::Deq),],
        0..250,
    )
}

fn check_against_model<Q: ConcurrentQueue<u64>>(queue: &Q, ops: &[ScriptOp]) {
    let mut handle = queue.handle();
    let mut model: VecDeque<u64> = VecDeque::new();
    for (i, op) in ops.iter().enumerate() {
        match op {
            ScriptOp::Enq(v) => {
                handle.enqueue(*v);
                model.push_back(*v);
            }
            ScriptOp::Deq => {
                assert_eq!(
                    handle.dequeue(),
                    model.pop_front(),
                    "{} diverged at op {i}",
                    queue.name()
                );
            }
        }
    }
    // Drain fully and verify emptiness agrees.
    while let Some(expect) = model.pop_front() {
        assert_eq!(handle.dequeue(), Some(expect), "{} drain", queue.name());
    }
    assert_eq!(handle.dequeue(), None, "{} final empty", queue.name());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_queues_match_vecdeque(ops in script()) {
        check_against_model(&WfUnbounded::new(1), &ops);
        check_against_model(&WfBounded::new(1), &ops);
        check_against_model(&WfBounded::with_gc_period(1, 3), &ops);
        // Capacity above the script length: a single-threaded enqueue on
        // a full ring would spin forever (nobody to dequeue).
        check_against_model(&WfRing::new(1, 256), &ops);
        check_against_model(&Ms::new(), &ops);
        check_against_model(&TwoLock::new(), &ops);
        check_against_model(&CoarseMutex::new(), &ops);
        check_against_model(&Seg::new(), &ops);
    }

    #[test]
    fn wf_variants_agree_with_each_other_multi_handle(
        ops in proptest::collection::vec((0usize..4, prop_oneof![
            any::<u64>().prop_map(ScriptOp::Enq),
            Just(ScriptOp::Deq),
        ]), 0..200),
        gc in 1usize..12,
    ) {
        let unbounded = WfUnbounded::new(4);
        let bounded = WfBounded::with_gc_period(4, gc);
        let mut hu: Vec<_> = (0..4).map(|_| unbounded.handle()).collect();
        let mut hb: Vec<_> = (0..4).map(|_| bounded.handle()).collect();
        for (who, op) in &ops {
            match op {
                ScriptOp::Enq(v) => {
                    hu[*who].enqueue(*v);
                    hb[*who].enqueue(*v);
                }
                ScriptOp::Deq => {
                    prop_assert_eq!(hu[*who].dequeue(), hb[*who].dequeue());
                }
            }
        }
    }
}

#[test]
fn vector_matches_vec_model() {
    let v: wfqueue::vector::WfVector<u64> = wfqueue::vector::WfVector::new(2);
    let mut handles = v.handles();
    let mut model: Vec<u64> = Vec::new();
    for i in 0..300u64 {
        let pos = handles[(i % 2) as usize].append(i * 3);
        assert_eq!(pos, model.len());
        model.push(i * 3);
    }
    for (i, expect) in model.iter().enumerate() {
        assert_eq!(v.get(i), Some(*expect));
    }
    assert_eq!(v.get(model.len()), None);
    assert_eq!(v.len(), model.len());
}
