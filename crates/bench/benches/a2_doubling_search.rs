//! Ablation A2 — the doubling search of `FindResponse` (Lemma 20).
//!
//! Replacing it with a plain binary search over the whole root history
//! would make dequeues pay `O(log b)` (logarithmic in *operations ever
//! performed*) instead of `O(log q)` (logarithmic in the queue size). This
//! ablation holds `q = 8` fixed and grows the history, measuring both
//! strategies on the identical structure.

use wfqueue::unbounded::ablation::compare_front_search;
use wfqueue::unbounded::Queue;
use wfqueue_harness::table::Table;

fn main() {
    let mut table = Table::new(
        "A2: doubling search vs full binary search (q fixed at 8, history grows)",
        &[
            "history ops",
            "root blocks",
            "doubling steps",
            "full-binary steps",
        ],
    );
    let queue: Queue<u64> = Queue::new(1);
    let mut h = queue.register().expect("one handle");
    for i in 0..8 {
        h.enqueue(i);
    }
    let mut done = 0u64;
    for target in [1u64 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 17] {
        while done < target {
            h.enqueue(1_000 + done);
            let _ = h.dequeue();
            done += 1;
        }
        let cmp = compare_front_search(&queue).expect("queue holds 8 elements");
        table.row_owned(vec![
            (2 * target).to_string(),
            cmp.root_blocks.to_string(),
            cmp.doubling_steps.to_string(),
            cmp.full_binary_steps.to_string(),
        ]);
    }
    println!("{table}");
    println!(
        "expected shape: the doubling column is flat (O(log q), q constant) while the\n\
         full-binary column grows by ~1 step per doubling of the history (O(log b)).\n\
         This is why Lemma 20 makes dequeues O(log q) rather than O(log #ops).\n"
    );
}
