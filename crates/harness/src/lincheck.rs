//! Small-scope linearizability checking for FIFO queues.
//!
//! Records complete concurrent histories with a global logical clock, then
//! searches for a linearization (a total order of operations, consistent
//! with real-time order, that the sequential queue specification accepts) —
//! the Wing–Gong/Herlihy–Wing approach with memoization. Exponential in the
//! worst case, so it is applied to small histories (≤ ~20 operations), many
//! times with different seeds; this is the standard "small scope" regime
//! where linearizability bugs in queues are overwhelmingly found.

use std::collections::HashSet;
use std::collections::VecDeque;
use std::sync::Barrier;
use wfqueue_sync::atomic::{AtomicU64, Ordering};

use crate::queue_api::{CapacityError, ConcurrentQueue, QueueHandle};
use crate::rng::SplitMix64;

/// An operation observed in a history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `enqueue(value)` (values must be distinct across the history).
    Enqueue(u32),
    /// `dequeue() -> response`.
    Dequeue(Option<u32>),
}

/// One completed operation with invocation/response timestamps from a
/// global logical clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Logical time of the invocation.
    pub invoke: u64,
    /// Logical time of the response (always > `invoke`).
    pub ret: u64,
    /// The operation and its observed response.
    pub op: Op,
}

/// Records a complete concurrent history of `threads × ops_per_thread`
/// operations against `queue`.
///
/// Values are unique (`thread << 16 | seq`), which makes checking FIFO
/// linearizability tractable.
///
/// # Panics
///
/// Panics if the queue cannot hand out `threads` handles; use
/// [`try_record_history`] for a [`CapacityError`] instead.
pub fn record_history<Q: ConcurrentQueue<u32>>(
    queue: &Q,
    threads: usize,
    ops_per_thread: usize,
    enqueue_permille: u32,
    seed: u64,
) -> Vec<Event> {
    try_record_history(queue, threads, ops_per_thread, enqueue_permille, seed)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Panic-free [`record_history`].
///
/// # Errors
///
/// Returns [`CapacityError`] if the queue cannot hand out `threads`
/// handles.
pub fn try_record_history<Q: ConcurrentQueue<u32>>(
    queue: &Q,
    threads: usize,
    ops_per_thread: usize,
    enqueue_permille: u32,
    seed: u64,
) -> Result<Vec<Event>, CapacityError> {
    let clock = AtomicU64::new(0);
    let barrier = Barrier::new(threads);
    let handles: Vec<Q::Handle<'_>> = queue.try_handles(threads)?;
    let per_thread: Vec<Vec<Event>> = wfqueue_sync::thread::scope(|s| {
        let joins: Vec<_> = handles
            .into_iter()
            .enumerate()
            .map(|(tid, mut handle)| {
                let clock = &clock;
                let barrier = &barrier;
                s.spawn(move || {
                    let mut rng = SplitMix64::new(seed.wrapping_add(tid as u64 * 7919));
                    let mut events = Vec::with_capacity(ops_per_thread);
                    barrier.wait();
                    for seq in 0..ops_per_thread {
                        let is_enq = rng.chance_permille(enqueue_permille);
                        // ORDERING: the logical clock must totally order
                        // invoke/return stamps across threads — SC RMWs
                        // give exactly that; anything weaker would let
                        // the history builder derive a bogus partial
                        // order and report false linearizability verdicts.
                        let invoke = clock.fetch_add(1, Ordering::SeqCst);
                        let op = if is_enq {
                            let value = ((tid as u32) << 16) | seq as u32;
                            handle.enqueue(value);
                            Op::Enqueue(value)
                        } else {
                            Op::Dequeue(handle.dequeue())
                        };
                        // ORDERING: SC return stamp (see above).
                        let ret = clock.fetch_add(1, Ordering::SeqCst);
                        events.push(Event { invoke, ret, op });
                    }
                    events
                })
            })
            .collect();
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    });
    Ok(per_thread.into_iter().flatten().collect())
}

/// Records a complete concurrent history of **batched** operations: each of
/// `threads × batches_per_thread` batches is an `enqueue_batch` or
/// `dequeue_batch` of `batch_size` operations, contributing `batch_size`
/// events that share the batch's invocation/response timestamps (the batch
/// appends one leaf block, so its operations all overlap the whole batch
/// interval; the checker is then free to order them, and a linearization
/// exists iff the batch's operations can be placed — in particular in their
/// batch order, which native batching guarantees).
///
/// # Panics
///
/// Panics if the queue cannot hand out `threads` handles; use
/// [`try_record_batch_history`] for a [`CapacityError`] instead.
pub fn record_batch_history<Q: ConcurrentQueue<u32>>(
    queue: &Q,
    threads: usize,
    batches_per_thread: usize,
    batch_size: usize,
    enqueue_permille: u32,
    seed: u64,
) -> Vec<Event> {
    try_record_batch_history(
        queue,
        threads,
        batches_per_thread,
        batch_size,
        enqueue_permille,
        seed,
    )
    .unwrap_or_else(|e| panic!("{e}"))
}

/// Panic-free [`record_batch_history`].
///
/// # Errors
///
/// Returns [`CapacityError`] if the queue cannot hand out `threads`
/// handles.
pub fn try_record_batch_history<Q: ConcurrentQueue<u32>>(
    queue: &Q,
    threads: usize,
    batches_per_thread: usize,
    batch_size: usize,
    enqueue_permille: u32,
    seed: u64,
) -> Result<Vec<Event>, CapacityError> {
    let clock = AtomicU64::new(0);
    let barrier = Barrier::new(threads);
    let handles: Vec<Q::Handle<'_>> = queue.try_handles(threads)?;
    let per_thread: Vec<Vec<Event>> = wfqueue_sync::thread::scope(|s| {
        let joins: Vec<_> = handles
            .into_iter()
            .enumerate()
            .map(|(tid, mut handle)| {
                let clock = &clock;
                let barrier = &barrier;
                s.spawn(move || {
                    let mut rng = SplitMix64::new(seed.wrapping_add(tid as u64 * 7919));
                    let mut events = Vec::with_capacity(batches_per_thread * batch_size);
                    barrier.wait();
                    for batch in 0..batches_per_thread {
                        let is_enq = rng.chance_permille(enqueue_permille);
                        // ORDERING: SC logical-clock stamp, as in
                        // `run_lincheck` above.
                        let invoke = clock.fetch_add(1, Ordering::SeqCst);
                        let ops: Vec<Op> = if is_enq {
                            let values: Vec<u32> = (0..batch_size)
                                .map(|j| ((tid as u32) << 16) | (batch * batch_size + j) as u32)
                                .collect();
                            handle.enqueue_batch(values.clone());
                            values.into_iter().map(Op::Enqueue).collect()
                        } else {
                            handle
                                .dequeue_batch(batch_size)
                                .into_iter()
                                .map(Op::Dequeue)
                                .collect()
                        };
                        // ORDERING: SC return stamp (see above).
                        let ret = clock.fetch_add(1, Ordering::SeqCst);
                        events.extend(ops.into_iter().map(|op| Event { invoke, ret, op }));
                    }
                    events
                })
            })
            .collect();
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    });
    Ok(per_thread.into_iter().flatten().collect())
}

/// Searches for a valid linearization of `history` against the sequential
/// FIFO queue specification.
///
/// # Errors
///
/// Returns a human-readable explanation if no linearization exists.
///
/// # Panics
///
/// Panics if the history has more than 64 operations (use small scopes).
pub fn check_linearizable(history: &[Event]) -> Result<(), String> {
    assert!(history.len() <= 64, "small-scope checker: at most 64 ops");
    let n = history.len();
    if n == 0 {
        return Ok(());
    }
    let full: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };

    // DFS over (set of linearized ops, queue state).
    let mut visited: HashSet<(u64, Vec<u32>)> = HashSet::new();
    let mut stack: Vec<(u64, VecDeque<u32>)> = vec![(0, VecDeque::new())];

    while let Some((done, queue)) = stack.pop() {
        if done == full {
            return Ok(());
        }
        let key = (done, queue.iter().copied().collect::<Vec<_>>());
        if !visited.insert(key) {
            continue;
        }
        // An op may be linearized next iff no other pending op returned
        // before it was invoked.
        let min_ret = history
            .iter()
            .enumerate()
            .filter(|(i, _)| done & (1 << i) == 0)
            .map(|(_, e)| e.ret)
            .min()
            .expect("pending ops exist");
        for (i, e) in history.iter().enumerate() {
            if done & (1 << i) != 0 || e.invoke > min_ret {
                continue;
            }
            match e.op {
                Op::Enqueue(v) => {
                    let mut q2 = queue.clone();
                    q2.push_back(v);
                    stack.push((done | (1 << i), q2));
                }
                Op::Dequeue(resp) => {
                    let front = queue.front().copied();
                    if front == resp {
                        let mut q2 = queue.clone();
                        q2.pop_front();
                        stack.push((done | (1 << i), q2));
                    }
                    // Otherwise this op cannot be linearized here.
                }
            }
        }
    }
    Err(describe_failure(history))
}

fn describe_failure(history: &[Event]) -> String {
    let mut sorted: Vec<_> = history.to_vec();
    sorted.sort_by_key(|e| e.invoke);
    let ops: Vec<String> = sorted
        .iter()
        .map(|e| match e.op {
            Op::Enqueue(v) => format!("[{}-{}] Enq({v})", e.invoke, e.ret),
            Op::Dequeue(r) => format!("[{}-{}] Deq->{r:?}", e.invoke, e.ret),
        })
        .collect();
    format!("no linearization exists for history: {}", ops.join(", "))
}

/// Runs `rounds` small concurrent histories against freshly built queues
/// and checks each for linearizability.
///
/// # Errors
///
/// Returns the first failing round's description.
pub fn check_rounds<Q, F>(
    mut make_queue: F,
    threads: usize,
    ops_per_thread: usize,
    rounds: u64,
) -> Result<(), String>
where
    Q: ConcurrentQueue<u32>,
    F: FnMut() -> Q,
{
    for round in 0..rounds {
        // Mix ratios across rounds: enqueue-heavy, balanced, dequeue-heavy.
        let permille = match round % 3 {
            0 => 700,
            1 => 500,
            _ => 300,
        };
        let q = make_queue();
        let history = record_history(&q, threads, ops_per_thread, permille, round * 31 + 1);
        check_linearizable(&history).map_err(|e| format!("round {round}: {e}"))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(invoke: u64, ret: u64, op: Op) -> Event {
        Event { invoke, ret, op }
    }

    #[test]
    fn empty_history_is_linearizable() {
        assert!(check_linearizable(&[]).is_ok());
    }

    #[test]
    fn sequential_fifo_history_ok() {
        let h = vec![
            ev(0, 1, Op::Enqueue(1)),
            ev(2, 3, Op::Enqueue(2)),
            ev(4, 5, Op::Dequeue(Some(1))),
            ev(6, 7, Op::Dequeue(Some(2))),
            ev(8, 9, Op::Dequeue(None)),
        ];
        assert!(check_linearizable(&h).is_ok());
    }

    #[test]
    fn sequential_lifo_history_rejected() {
        // A stack-like response: second enqueue dequeued first while the
        // operations do not overlap — not linearizable for a queue.
        let h = vec![
            ev(0, 1, Op::Enqueue(1)),
            ev(2, 3, Op::Enqueue(2)),
            ev(4, 5, Op::Dequeue(Some(2))),
        ];
        assert!(check_linearizable(&h).is_err());
    }

    #[test]
    fn overlapping_enqueues_allow_either_order() {
        let h = vec![
            ev(0, 3, Op::Enqueue(1)), // overlaps with Enq(2)
            ev(1, 2, Op::Enqueue(2)),
            ev(4, 5, Op::Dequeue(Some(2))),
            ev(6, 7, Op::Dequeue(Some(1))),
        ];
        assert!(check_linearizable(&h).is_ok());
    }

    #[test]
    fn dequeue_of_unenqueued_value_rejected() {
        let h = vec![ev(0, 1, Op::Dequeue(Some(9)))];
        assert!(check_linearizable(&h).is_err());
    }

    #[test]
    fn null_dequeue_must_be_justifiable() {
        // Enq(1) returns before the dequeue starts, and nothing else
        // dequeues 1, so Deq->None is not linearizable.
        let h = vec![ev(0, 1, Op::Enqueue(1)), ev(2, 3, Op::Dequeue(None))];
        assert!(check_linearizable(&h).is_err());
        // But if they overlap, None is fine (dequeue first).
        let h = vec![ev(0, 3, Op::Enqueue(1)), ev(1, 2, Op::Dequeue(None))];
        assert!(check_linearizable(&h).is_ok());
    }

    #[test]
    fn duplicate_consumption_rejected() {
        let h = vec![
            ev(0, 1, Op::Enqueue(1)),
            ev(2, 5, Op::Dequeue(Some(1))),
            ev(3, 6, Op::Dequeue(Some(1))),
        ];
        assert!(check_linearizable(&h).is_err());
    }

    #[test]
    fn real_histories_from_reference_queue_pass() {
        use crate::queue_api::CoarseMutex;
        for seed in 0..10 {
            let q = CoarseMutex::new();
            let h = record_history(&q, 3, 4, 500, seed);
            assert_eq!(h.len(), 12);
            check_linearizable(&h).unwrap();
        }
    }

    #[test]
    fn check_rounds_smoke() {
        use crate::queue_api::CoarseMutex;
        check_rounds(CoarseMutex::new, 2, 3, 6).unwrap();
    }

    #[test]
    fn batch_histories_from_reference_queue_pass() {
        use crate::queue_api::CoarseMutex;
        for seed in 0..6 {
            let q = CoarseMutex::new();
            let h = record_batch_history(&q, 2, 3, 3, 500, seed);
            assert_eq!(h.len(), 18);
            check_linearizable(&h).unwrap();
        }
    }
}
