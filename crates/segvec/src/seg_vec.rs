//! The write-once segmented vector.

use std::fmt;
use std::marker::PhantomData;
use std::ptr;
use wfqueue_sync::atomic::{AtomicPtr, Ordering};

use wfqueue_metrics as metrics;

/// Number of entries in segment 0; segment `s` holds `BASE << s` entries.
const BASE: usize = 64;
/// log2 of [`BASE`].
const BASE_LOG2: u32 = BASE.trailing_zeros();
/// Number of segments in the directory. Total capacity is
/// `(2^SEGMENTS - 1) * BASE` entries, i.e. effectively unbounded (≥ 2^63).
const SEGMENTS: usize = 58;

/// An unbounded, lock-free, **write-once** vector.
///
/// `SegVec<T>` models the paper's infinite `blocks` array: each index can be
/// installed at most once (CAS from empty), is never overwritten by
/// `try_install`, and is freed when the `SegVec` itself is dropped. Readers
/// get `&T` references that live as long as the vector, with no
/// synchronisation beyond one atomic load per level.
///
/// # Explicit unlinking
///
/// [`SegVec::take_raw`] and [`SegVec::replace_raw`] let a *reclaiming*
/// caller unlink entries early, which is what the unbounded queue's
/// epoch-based tree truncation uses. They return the raw pointer that was
/// installed so the caller can defer its destruction; until the caller
/// frees that pointer, previously handed-out `&T` references remain valid.
/// A caller that never unlinks keeps the plain write-once contract above.
/// Unlinking records no shared-memory step: it is maintenance work outside
/// the algorithms' step accounting (like [`SegVec::get_untracked`]).
///
/// Storage is a fixed directory of segments whose sizes grow geometrically
/// (64, 128, 256, ...), so `get`/`try_install` are wait-free with O(1) work,
/// and installing never moves existing entries.
///
/// # Examples
///
/// ```
/// use wfqueue_segvec::SegVec;
///
/// let v: SegVec<String> = SegVec::new();
/// assert!(v.get(3).is_none());
/// v.try_install(3, Box::new("hello".to_owned())).unwrap();
/// assert_eq!(v.get(3).map(String::as_str), Some("hello"));
/// ```
pub struct SegVec<T> {
    /// `directory[s]` points to an array of `BASE << s` slot pointers, or is
    /// null if the segment has not been allocated yet.
    directory: [AtomicPtr<AtomicPtr<T>>; SEGMENTS],
    _marker: PhantomData<T>,
}

// SAFETY: `SegVec` hands out `&T` to any thread and accepts `Box<T>` from
// any thread, so it is `Send`/`Sync` exactly when `T` is both.
unsafe impl<T: Send + Sync> Send for SegVec<T> {}
// SAFETY: see above.
unsafe impl<T: Send + Sync> Sync for SegVec<T> {}

/// Maps a global index to `(segment, offset)`.
///
/// Segment `s` covers global indices `[(2^s - 1) * BASE, (2^(s+1) - 1) * BASE)`.
#[inline]
fn locate(index: usize) -> (usize, usize) {
    let block = index / BASE + 1;
    let seg = (usize::BITS - 1 - block.leading_zeros()) as usize;
    let seg_start = ((1usize << seg) - 1) << BASE_LOG2;
    (seg, index - seg_start)
}

impl<T> SegVec<T> {
    /// Creates an empty vector.
    ///
    /// # Examples
    ///
    /// ```
    /// let v: wfqueue_segvec::SegVec<u32> = wfqueue_segvec::SegVec::new();
    /// assert!(v.get(0).is_none());
    /// ```
    #[must_use]
    pub fn new() -> Self {
        SegVec {
            directory: [(); SEGMENTS].map(|()| AtomicPtr::new(ptr::null_mut())),
            _marker: PhantomData,
        }
    }

    /// Returns the entry at `index`, or `None` if nothing has been installed
    /// there yet. Counts as one shared-memory step.
    ///
    /// # Examples
    ///
    /// ```
    /// let v: wfqueue_segvec::SegVec<u32> = wfqueue_segvec::SegVec::new();
    /// assert_eq!(v.get(3), None);
    /// v.try_install(3, Box::new(30)).unwrap();
    /// assert_eq!(v.get(3), Some(&30));
    /// ```
    #[must_use]
    pub fn get(&self, index: usize) -> Option<&T> {
        metrics::record_shared_load();
        self.get_untracked(index)
    }

    /// [`SegVec::get`] without recording a shared-memory step.
    ///
    /// For *maintenance* readers that live outside the algorithms' step
    /// accounting (the unbounded queue's truncator is the motivating
    /// caller): recording their probes would attribute unbounded bursts of
    /// maintenance work to whichever operation happens to trigger it.
    /// Algorithm code paths must use [`SegVec::get`].
    #[must_use]
    pub fn get_untracked(&self, index: usize) -> Option<&T> {
        let (seg, off) = locate(index);
        let seg_ptr = self.directory[seg].load(Ordering::Acquire);
        if seg_ptr.is_null() {
            return None;
        }
        // SAFETY: a non-null directory entry points to a live array of
        // `BASE << seg` slots; it is published with Release and never freed
        // before `self` is dropped (Drop takes `&mut self`).
        let slot = unsafe { &*seg_ptr.add(off) };
        let value = slot.load(Ordering::Acquire);
        if value.is_null() {
            None
        } else {
            // SAFETY: the pointee is freed either in Drop or — after an
            // explicit `take_raw`/`replace_raw` unlink — by a caller who
            // contractually defers the free past every outstanding reader,
            // so the reference is valid for as long as the caller can use it.
            Some(unsafe { &*value })
        }
    }

    /// Attempts to install `value` at `index` (a CAS from empty).
    ///
    /// On success returns a reference to the installed value. If another
    /// value was installed first, returns it together with the rejected box
    /// so the caller can reuse or drop it. Counts as one CAS step.
    ///
    /// # Examples
    ///
    /// ```
    /// let v = wfqueue_segvec::SegVec::new();
    /// assert!(v.try_install(0, Box::new(1)).is_ok());
    /// let (existing, rejected) = v.try_install(0, Box::new(2)).unwrap_err();
    /// assert_eq!((*existing, *rejected), (1, 2));
    /// ```
    pub fn try_install(&self, index: usize, value: Box<T>) -> Result<&T, (&T, Box<T>)> {
        let (seg, off) = locate(index);
        let segment = self.segment_or_alloc(seg);
        // SAFETY: `segment` points to a live array of `BASE << seg` slots
        // (see `segment_or_alloc`); `off < BASE << seg` by `locate`.
        let slot = unsafe { &*segment.add(off) };
        let raw = Box::into_raw(value);
        // ORDERING: SC publication CAS of the boxed value; readers'
        // SC loads then see the pointee fully initialised. SC (rather
        // than Release/Acquire) keeps the segvec layer uniform until
        // the ROADMAP relaxation pass.
        match slot.compare_exchange(ptr::null_mut(), raw, Ordering::SeqCst, Ordering::SeqCst) {
            Ok(_) => {
                metrics::record_cas(true);
                // SAFETY: we just published `raw`; write-once slots are never
                // freed before `self` is dropped.
                Ok(unsafe { &*raw })
            }
            Err(existing) => {
                metrics::record_cas(false);
                // SAFETY: `raw` came from `Box::into_raw` above and was not
                // published (the CAS failed), so we uniquely own it again.
                let rejected = unsafe { Box::from_raw(raw) };
                // SAFETY: `existing` is non-null (CAS failed against a
                // non-null current value) and write-once.
                Err((unsafe { &*existing }, rejected))
            }
        }
    }

    /// Atomically unlinks the entry at `index`, returning the raw pointer
    /// that was installed there (`None` if the slot was empty).
    ///
    /// The pointee is **not** freed: ownership of the allocation passes to
    /// the caller, who must destroy it with `Box::from_raw` only once no
    /// concurrent reader can still hold a `&T` obtained from [`SegVec::get`]
    /// (e.g. via an epoch guard's deferred destruction). After the unlink,
    /// `get(index)` returns `None` and `try_install(index, ..)` could
    /// succeed again — callers that rely on write-once semantics must not
    /// reuse unlinked indices. Records no step (maintenance work).
    #[must_use]
    pub fn take_raw(&self, index: usize) -> Option<*mut T> {
        let (seg, off) = locate(index);
        let seg_ptr = self.directory[seg].load(Ordering::Acquire);
        if seg_ptr.is_null() {
            return None;
        }
        // SAFETY: a non-null directory entry points to a live array of
        // `BASE << seg` slots (see `get`).
        let slot = unsafe { &*seg_ptr.add(off) };
        // ORDERING: SC swap — takes unique ownership of the boxed value
        // and synchronizes with its publication.
        let old = slot.swap(ptr::null_mut(), Ordering::SeqCst);
        if old.is_null() {
            None
        } else {
            Some(old)
        }
    }

    /// Atomically replaces the entry at `index` with `value`, returning the
    /// raw pointer that was installed before (`None` if the slot was empty —
    /// the new value is installed either way).
    ///
    /// Ownership of the returned pointer passes to the caller under the same
    /// deferred-destruction contract as [`SegVec::take_raw`]. Concurrent
    /// readers observe either the old or the new entry. Records no step
    /// (maintenance work).
    #[must_use]
    pub fn replace_raw(&self, index: usize, value: Box<T>) -> Option<*mut T> {
        let (seg, off) = locate(index);
        let segment = self.segment_or_alloc(seg);
        // SAFETY: `segment` points to a live array of `BASE << seg` slots;
        // `off < BASE << seg` by `locate`.
        let slot = unsafe { &*segment.add(off) };
        // ORDERING: SC swap — publishes the new box and takes unique
        // ownership of the old one in a single RMW.
        let old = slot.swap(Box::into_raw(value), Ordering::SeqCst);
        if old.is_null() {
            None
        } else {
            Some(old)
        }
    }

    /// Returns the segment array for `seg`, allocating and publishing it if
    /// necessary. Losing allocators free their candidate.
    fn segment_or_alloc(&self, seg: usize) -> *const AtomicPtr<T> {
        let dir = &self.directory[seg];
        let current = dir.load(Ordering::Acquire);
        if !current.is_null() {
            return current;
        }
        let len = BASE << seg;
        let mut fresh: Vec<AtomicPtr<T>> = Vec::with_capacity(len);
        fresh.resize_with(len, || AtomicPtr::new(ptr::null_mut()));
        let boxed: Box<[AtomicPtr<T>]> = fresh.into_boxed_slice();
        let raw = Box::into_raw(boxed) as *mut AtomicPtr<T>;
        match dir.compare_exchange(ptr::null_mut(), raw, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => raw,
            Err(winner) => {
                // SAFETY: our candidate lost the race and was never
                // published; reconstitute the box to free it.
                unsafe {
                    drop(Box::from_raw(ptr::slice_from_raw_parts_mut(raw, len)));
                }
                winner
            }
        }
    }

    /// Returns an iterator over installed entries in `0..len`, yielding
    /// `None` for empty slots. Intended for tests and introspection.
    ///
    /// # Examples
    ///
    /// ```
    /// let v: wfqueue_segvec::SegVec<u32> = wfqueue_segvec::SegVec::new();
    /// v.try_install(1, Box::new(10)).unwrap();
    /// let prefix: Vec<Option<&u32>> = v.iter_prefix(3).collect();
    /// assert_eq!(prefix, vec![None, Some(&10), None]);
    /// ```
    pub fn iter_prefix(&self, len: usize) -> impl Iterator<Item = Option<&T>> + '_ {
        (0..len).map(move |i| self.get(i))
    }
}

impl<T> Default for SegVec<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: fmt::Debug> fmt::Debug for SegVec<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Show the installed prefix (stops at the first hole), which is the
        // meaningful contents under the queue's Invariant 3.
        let mut list = f.debug_list();
        let mut i = 0;
        while let Some(v) = self.get(i) {
            list.entry(v);
            i += 1;
            if i > 64 {
                break;
            }
        }
        list.finish()
    }
}

impl<T> Drop for SegVec<T> {
    fn drop(&mut self) {
        for (seg, dir) in self.directory.iter_mut().enumerate() {
            let seg_ptr = *dir.get_mut();
            if seg_ptr.is_null() {
                continue;
            }
            let len = BASE << seg;
            // SAFETY: exclusive access (`&mut self`); the segment was
            // allocated by `segment_or_alloc` with exactly this length.
            let segment = unsafe { Box::from_raw(ptr::slice_from_raw_parts_mut(seg_ptr, len)) };
            for slot in segment.iter() {
                let value = slot.load(Ordering::Relaxed);
                if !value.is_null() {
                    // SAFETY: installed values are owned by the vector and
                    // no references outlive `self`.
                    unsafe { drop(Box::from_raw(value)) };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use wfqueue_sync::atomic::AtomicUsize;

    #[test]
    fn locate_covers_consecutive_indices() {
        // Each global index maps to a unique (segment, offset) pair and the
        // segment boundaries line up with geometric growth.
        let mut last = (0usize, usize::MAX);
        for i in 0..100_000 {
            let (seg, off) = locate(i);
            assert!(off < BASE << seg, "offset in range at {i}");
            if seg == last.0 {
                assert_eq!(off, last.1.wrapping_add(1), "offsets consecutive at {i}");
            } else {
                assert_eq!(seg, last.0 + 1, "segments consecutive at {i}");
                assert_eq!(off, 0, "new segment starts at 0 at {i}");
            }
            last = (seg, off);
        }
    }

    #[test]
    fn locate_boundaries() {
        assert_eq!(locate(0), (0, 0));
        assert_eq!(locate(BASE - 1), (0, BASE - 1));
        assert_eq!(locate(BASE), (1, 0));
        assert_eq!(locate(3 * BASE - 1), (1, 2 * BASE - 1));
        assert_eq!(locate(3 * BASE), (2, 0));
    }

    #[test]
    fn get_empty_returns_none() {
        let v: SegVec<u64> = SegVec::new();
        assert!(v.get(0).is_none());
        assert!(v.get(12345).is_none());
    }

    #[test]
    fn install_then_get() {
        let v = SegVec::new();
        for i in (0..1000).rev() {
            v.try_install(i, Box::new(i as u64 * 3)).unwrap();
        }
        for i in 0..1000 {
            assert_eq!(v.get(i), Some(&(i as u64 * 3)));
        }
    }

    #[test]
    fn double_install_fails_and_returns_box() {
        let v = SegVec::new();
        v.try_install(7, Box::new("first")).unwrap();
        let (existing, rejected) = v.try_install(7, Box::new("second")).unwrap_err();
        assert_eq!(*existing, "first");
        assert_eq!(*rejected, "second");
        assert_eq!(v.get(7), Some(&"first"));
    }

    #[test]
    fn sparse_indices_across_segments() {
        let v = SegVec::new();
        for &i in &[0usize, 63, 64, 191, 192, 1000, 65_535, 1 << 20] {
            v.try_install(i, Box::new(i)).unwrap();
        }
        for &i in &[0usize, 63, 64, 191, 192, 1000, 65_535, 1 << 20] {
            assert_eq!(v.get(i), Some(&i));
        }
        assert!(v.get(1).is_none());
        assert!(v.get((1 << 20) - 1).is_none());
    }

    #[test]
    fn drop_frees_all_values() {
        struct CountDrop(Arc<AtomicUsize>);
        impl Drop for CountDrop {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let v = SegVec::new();
            for i in 0..500 {
                v.try_install(i, Box::new(CountDrop(Arc::clone(&drops))))
                    .ok();
            }
            // A lost race also drops its box exactly once.
            let _ = v.try_install(0, Box::new(CountDrop(Arc::clone(&drops))));
            assert_eq!(drops.load(Ordering::Relaxed), 1);
        }
        assert_eq!(drops.load(Ordering::Relaxed), 501);
    }

    #[test]
    fn concurrent_install_single_winner_per_slot() {
        let v: Arc<SegVec<usize>> = Arc::new(SegVec::new());
        let threads = 8;
        let slots = 256;
        let winners: Vec<_> = (0..threads)
            .map(|t| {
                let v = Arc::clone(&v);
                wfqueue_sync::thread::spawn(move || {
                    let mut won = 0;
                    for i in 0..slots {
                        if v.try_install(i, Box::new(t)).is_ok() {
                            won += 1;
                        }
                    }
                    won
                })
            })
            .collect();
        let total: usize = winners.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, slots, "exactly one install wins per slot");
        for i in 0..slots {
            assert!(v.get(i).is_some());
        }
    }

    #[test]
    fn take_raw_unlinks_and_hands_back_ownership() {
        let v: SegVec<u64> = SegVec::new();
        assert!(v.take_raw(5).is_none(), "empty slot yields nothing");
        v.try_install(5, Box::new(42)).unwrap();
        let raw = v.take_raw(5).expect("installed entry is returned");
        assert!(v.get(5).is_none(), "slot is empty after the unlink");
        assert!(v.take_raw(5).is_none(), "second take finds nothing");
        // SAFETY: `raw` came from `Box::into_raw` inside `try_install` and
        // was unlinked exactly once; no readers exist in this test.
        let owned = unsafe { Box::from_raw(raw) };
        assert_eq!(*owned, 42);
    }

    #[test]
    fn replace_raw_swaps_entries() {
        let v: SegVec<&str> = SegVec::new();
        assert!(
            v.replace_raw(3, Box::new("fresh")).is_none(),
            "replacing an empty slot installs and returns nothing"
        );
        assert_eq!(v.get(3), Some(&"fresh"));
        let old = v.replace_raw(3, Box::new("newer")).expect("old entry");
        assert_eq!(v.get(3), Some(&"newer"));
        // SAFETY: unlinked exactly once, no concurrent readers in this test.
        let owned = unsafe { Box::from_raw(old) };
        assert_eq!(*owned, "fresh");
    }

    #[test]
    fn send_sync_bounds() {
        fn assert_send_sync<X: Send + Sync>() {}
        assert_send_sync::<SegVec<u64>>();
    }

    #[test]
    fn debug_is_nonempty() {
        let v: SegVec<u8> = SegVec::new();
        assert_eq!(format!("{v:?}"), "[]");
        v.try_install(0, Box::new(9)).unwrap();
        assert_eq!(format!("{v:?}"), "[9]");
    }
}
