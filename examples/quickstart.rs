//! Quickstart: share a wait-free queue between producer and consumer
//! threads.
//!
//! Run with: `cargo run --example quickstart`

use wfqueue::unbounded::Queue;

fn main() {
    // A queue for 5 processes: 2 producers + 2 consumers + the main thread.
    // Each gets its own handle (its leaf of the ordering tree).
    let queue: Queue<u64> = Queue::new(5);
    let mut handles = queue.handles();
    let mut main_handle = handles.remove(0);

    let per_producer = 10_000u64;
    let total = 2 * per_producer;

    let consumed: Vec<Vec<u64>> = std::thread::scope(|s| {
        // Producers.
        for producer in 0..2u64 {
            let mut h = handles.remove(0);
            s.spawn(move || {
                for i in 0..per_producer {
                    h.enqueue(producer * per_producer + i);
                }
            });
        }
        // Consumers.
        let joins: Vec<_> = (0..2)
            .map(|_| {
                let mut h = handles.remove(0);
                s.spawn(move || {
                    let mut got = Vec::new();
                    while (got.len() as u64) < per_producer {
                        if let Some(v) = h.dequeue() {
                            got.push(v);
                        }
                    }
                    got
                })
            })
            .collect();
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    });

    let received: usize = consumed.iter().map(Vec::len).sum();
    assert_eq!(received as u64, total);
    println!("transferred {received} values through the wait-free queue");

    // Every operation is wait-free: O(log p) steps per enqueue,
    // O(log² p + log q) per dequeue — measure one:
    let (_, steps) = wfqueue_metrics::measure(|| main_handle.enqueue(42));
    println!(
        "one enqueue took {} shared-memory steps",
        steps.memory_steps()
    );
    assert_eq!(main_handle.dequeue(), Some(42));
}
